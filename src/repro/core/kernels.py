"""Kernel recognition and numpy-vectorized execution for dense tabulations.

The ``:profile`` counters show dense rectangular tabulations dominate the
end-to-end benchmarks (``cells_materialized`` — see the ROADMAP's
"Vectorized tabulation backend" item).  This module converts that
dominant cost into a bulk array operation: a *kernel-recognition pass*
classifies tabulation bodies that are **closed arithmetic over the index
variables, numeric literals, and subscripts of numeric-element arrays**,
and a *vectorized executor* evaluates recognized kernels over the whole
index grid at once with numpy broadcasting.

Design constraints (see ``docs/VECTOR_BACKEND.md``):

* **Gated on numpy.**  ``import numpy`` is attempted once; without it
  (or with ``REPRO_NO_VECTORIZE=1`` in the environment) every query
  evaluates through the ordinary scalar paths.  Nothing outside this
  module imports numpy.
* **Fallback is the contract.**  :func:`execute` returns ``None``
  whenever it cannot *prove* the vectorized result would be
  cell-for-cell identical to the scalar loop — non-numeric or mixed
  int/float elements, possible ⊥ (division by zero, out-of-bounds or
  real-typed subscripts), or intermediate values that could overflow
  int64.  The caller then runs the unchanged scalar loop, so error
  behaviour (which cell raises, with which reason) is exactly the
  paper's semantics.
* **Blocks in, blocks out.**  Operand arrays are gathered from their
  dense backing blocks (:meth:`Array.dense_block`), and results are
  published as blocks too — :func:`execute` hands the computed ndarray
  straight to :class:`~repro.objects.array.Array`, which adopts it
  zero-copy.  No ``tolist`` round-trip happens on the dense path; boxed
  elements only materialize if a later consumer asks for ``flat``, and
  the lazy coercion produces exactly the ints/floats the scalar loop
  would have stored, so hashing, canonical ordering, and set membership
  are indistinguishable.  With the store disabled (``REPRO_NO_DENSE=1``)
  results coerce eagerly, reproducing the historical behaviour.

Semantics preserved cell-for-cell:

* nat ``-`` is monus (``max(0, a-b)``) → ``np.maximum(a - b, 0)``;
* nat ``/``/``%`` are floor division / Python-sign modulo, which numpy's
  ``//``/``%`` match exactly; a zero anywhere in the divisor grid means
  some cell is ⊥ → fall back to the scalar loop to raise it;
* mixed nat/real arithmetic promotes to float64, the same
  ``float(x) op float(y)`` the scalar :func:`~repro.core.eval.apply_arith`
  performs (int→double conversion rounds identically in both);
* Python ints are unbounded but int64 is not: an interval analysis runs
  alongside evaluation and falls back before any intermediate could
  exceed ``±2**62``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import ast
from repro.core import fastpath
from repro.errors import EvalError
from repro.objects import dense
from repro.objects.array import Array

try:  # pragma: no cover - exercised by the no-numpy CI lane
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: kill switch honoured at call time (tests/CI flip it; numpy absent
#: disables regardless)
ENABLED = os.environ.get("REPRO_NO_VECTORIZE", "") != "1"

#: tabulations smaller than this stay on the scalar loop — recognition
#: and grid setup cost more than they save on tiny domains.  The value
#: lives in :mod:`repro.core.fastpath` (shared with the parallel
#: executor's gate, and overridable per session via
#: ``Session(min_cells=...)``); the name is kept here for callers that
#: treat it as the backend's constant floor.
MIN_CELLS = fastpath.DEFAULT_MIN_CELLS

#: conservative magnitude guard: any intermediate whose *interval bound*
#: could exceed this falls back to the exact Python-int scalar loop.
#: Shared with the dense store so block invariants and kernel analysis
#: agree on what "int64-safe" means.
_INT_GUARD = dense.INT_GUARD


def available() -> bool:
    """True when the vectorized path may run (numpy present + enabled)."""
    return _np is not None and ENABLED


class _Fallback(Exception):
    """Internal: abandon vectorization, let the scalar loop decide."""


@dataclass(frozen=True)
class Kernel:
    """A recognized tabulation body and its external inputs.

    ``inputs`` are the index-variable-free leaves the executor needs
    values for: bare ``Var``/``Const`` scalars and the ``Var``/``Const``
    operands of subscripts.  The caller evaluates each in its own
    environment (interpreter ``Env`` or compiled slot stack) and passes
    the values to :func:`execute` positionally.
    """

    body: ast.Expr
    index_vars: Tuple[str, ...]
    inputs: Tuple[ast.Expr, ...]


def recognize(tab: ast.Tabulate) -> Optional[Kernel]:
    """Classify a tabulation body as a vectorizable kernel, or ``None``.

    Recognized grammar (over the tabulation's index variables ``i``)::

        k ::= i | natlit | reallit | var | const
            | k (+|-|*|/|%) k
            | a[k, ..., k]          where a is a var or const

    Everything else — conditionals, comparisons, ``get``, nested
    tabulations, applications, explicit ⊥ — is left to the scalar
    paths.  Whether the runtime values are actually numeric (and the
    subscripts in bounds, divisors non-zero, magnitudes int64-safe) is
    checked by :func:`execute`, which falls back rather than guess.
    """
    inputs: Dict[ast.Expr, None] = {}
    if not _scan(tab.body, frozenset(tab.vars), inputs):
        return None
    return Kernel(tab.body, tab.vars, tuple(inputs))


def recognize_sum(expr: ast.Sum) -> Optional[Kernel]:
    """Classify a Σ body as a kernel over the bound element variable.

    Same grammar as :func:`recognize`, with the Σ variable playing the
    role of the single index variable — except that at execution time
    its "grid" is the (arbitrary-valued) element slice rather than
    ``0..extent-1``, so only :func:`execute_elements` may run the
    result.
    """
    inputs: Dict[ast.Expr, None] = {}
    if not _scan(expr.body, frozenset((expr.var,)), inputs):
        return None
    return Kernel(expr.body, (expr.var,), tuple(inputs))


def _scan(expr: ast.Expr, index_vars: frozenset,
          inputs: Dict[ast.Expr, None]) -> bool:
    if isinstance(expr, ast.Var):
        if expr.name not in index_vars:
            inputs.setdefault(expr, None)
        return True
    if isinstance(expr, (ast.NatLit, ast.RealLit)):
        return True
    if isinstance(expr, ast.Const):
        inputs.setdefault(expr, None)
        return True
    if isinstance(expr, ast.Arith):
        return (_scan(expr.left, index_vars, inputs)
                and _scan(expr.right, index_vars, inputs))
    if isinstance(expr, ast.Subscript):
        operand = expr.array
        if isinstance(operand, ast.Var):
            if operand.name in index_vars:
                return False  # subscripting a nat is ⊥/type error anyway
        elif not isinstance(operand, ast.Const):
            return False
        inputs.setdefault(operand, None)
        return all(_scan(index, index_vars, inputs)
                   for index in expr.indices)
    return False


# ---------------------------------------------------------------------------
# dense numeric blocks (the Array backing store, repro.objects.dense)
# ---------------------------------------------------------------------------

def _dense_block(array: Array):
    """``(ndarray, lo, hi)`` for a homogeneous numeric array, else ⊥fall.

    Consumes the array's first-class backing block zero-copy: arrays
    built dense (tabulation results, NetCDF reads) already carry one,
    and object-backed arrays probe-and-cache on first demand
    (:meth:`Array.dense_block`).  ``bool`` blocks are rejected — the
    arithmetic grammar has no boolean operations, and letting a bool
    buffer into ``_is_int_operand`` would misclassify it as float.
    """
    block = array.dense_block()
    if block is None or block.tag == dense.TAG_BOOL:
        raise _Fallback()
    if block.tag == dense.TAG_INT:
        return block.data, block.lo, block.hi
    return block.data, None, None


# ---------------------------------------------------------------------------
# the vectorized executor
# ---------------------------------------------------------------------------

def execute(kernel: Kernel, extents: Sequence[int],
            input_values: Sequence[Any]) -> Optional[Array]:
    """Evaluate ``kernel`` over the full index grid, or ``None``.

    ``extents`` are the already-evaluated tabulation bounds;
    ``input_values`` the runtime values of ``kernel.inputs``, in order.
    Returns the materialized :class:`Array` (elements coerced back to
    Python ints/floats), or ``None`` when any runtime check fails and
    the caller must run the scalar loop instead.
    """
    if not available():
        return None
    extents = tuple(int(e) for e in extents)
    total = 1
    for extent in extents:
        total *= extent
    if total == 0:
        return Array(extents, [])
    values = dict(zip(kernel.inputs, input_values))
    rank = len(extents)
    grids: Dict[str, Tuple[Any, int, int]] = {}
    for axis, name in enumerate(kernel.index_vars):
        shape = [1] * rank
        shape[axis] = extents[axis]
        grid = _np.arange(extents[axis], dtype=_np.int64).reshape(shape)
        grids[name] = (grid, 0, extents[axis] - 1)
    try:
        out, _, _ = _vec(kernel.body, grids, values)
    except _Fallback:
        return None
    if type(out) is int or type(out) is float:
        # index-free body: one exact scalar replicated over the domain
        # (within the int guard, so the int64/float64 fill is lossless)
        if dense.store_enabled():
            dtype = _np.int64 if type(out) is int else _np.float64
            return Array(extents, _np.full(extents, out, dtype=dtype))
        cells: List[Any] = [out] * total
        return Array(extents, cells)
    block = _np.broadcast_to(out, extents)
    if dense.store_enabled():
        # publish the result as the array's backing block, zero-copy
        # (ascontiguousarray collapses the broadcast view to a buffer)
        return Array(extents, _np.ascontiguousarray(block))
    return Array(extents, block.ravel().tolist())


def execute_range(kernel: Kernel, extents: Sequence[int],
                  input_values: Sequence[Any], lo: int, hi: int):
    """Evaluate ``kernel`` over flat row-major cells ``lo..hi``, or ``None``.

    The cell-range form of :func:`execute`, built for the fused
    shard-kernel path (docs/PARALLEL.md): a process shard owns one
    contiguous slice ``[lo, hi)`` of the flattened domain and computes
    it with 1-D index grids recovered per "An Array Algebra" block
    addressing — the index along axis ``a`` of flat position ``p`` is
    ``(p // stride_a) % extent_a``.  Returns a contiguous 1-D
    int64/float64 ndarray of ``hi - lo`` values, ready to land in the
    shard's slice of the output slab.

    **Shard-global declines**: the interval analysis runs against the
    *full-domain* index bounds ``[0, extent-1]``, never the shard's
    sub-range, so every proof-based decline (overflow, possible ⊥,
    dtype) is decided identically in every shard and in the serial
    executor.  The only shard-local declines left are actual-value
    checks (a zero divisor, an out-of-bounds subscript *in this
    shard's cells*) — and those imply the shard contains a ⊥ cell, so
    its scalar fallback raises and the whole dispatch reruns serially
    anyway.  Shards therefore never split into a mix of vectorized and
    scalar *successes*.
    """
    if not available():
        return None
    extents = tuple(int(e) for e in extents)
    count = hi - lo
    if count <= 0:
        return None
    rank = len(extents)
    strides = [1] * rank
    for axis in range(rank - 2, -1, -1):
        strides[axis] = strides[axis + 1] * extents[axis + 1]
    values = dict(zip(kernel.inputs, input_values))
    positions = _np.arange(lo, hi, dtype=_np.int64)
    grids: Dict[str, Tuple[Any, int, int]] = {}
    for axis, name in enumerate(kernel.index_vars):
        grid = (positions // strides[axis]) % extents[axis]
        grids[name] = (grid, 0, extents[axis] - 1)
    try:
        out, _, _ = _vec(kernel.body, grids, values)
    except _Fallback:
        return None
    if type(out) is int or type(out) is float:
        dtype = _np.int64 if type(out) is int else _np.float64
        return _np.full(count, out, dtype=dtype)
    return _np.ascontiguousarray(_np.broadcast_to(out, (count,)))


def execute_elements(kernel: Kernel, elements, bounds: Tuple[Any, Any],
                     total_count: int, input_values: Sequence[Any]):
    """Fold ``kernel`` over an int64 element slice; ``(partial,)`` or ``None``.

    The Σ form of :func:`execute_range`: ``elements`` is one shard's
    slice of the canonical element list (an int64 ndarray mapped from
    shared memory), and the return value is the exact partial sum of
    the body over that slice, for the parent to fold in shard order.

    Exactness argument: integer addition is associative, and the
    overflow guard ``total_count * max(|lo|, |hi|) <= INT_GUARD``
    (where ``lo``/``hi`` bound the body's value over the *whole*
    element list) keeps every int64 prefix sum — inside this shard and
    across the parent's fold of partials — within int64, so the result
    equals the serial left-to-right fold bit for bit.  Float bodies
    return ``None``: float addition is non-associative and only the
    boxed in-order fold reproduces the serial rounding.  ``bounds``
    are the *global* element bounds, so every decline decision here is
    identical in all shards (see :func:`execute_range`).
    """
    if not available():
        return None
    lo, hi = bounds
    if lo is None or hi is None:
        return None
    count = int(elements.shape[0])
    if count <= 0:
        return None
    values = dict(zip(kernel.inputs, input_values))
    grids = {kernel.index_vars[0]: (elements, int(lo), int(hi))}
    try:
        out, olo, ohi = _vec(kernel.body, grids, values)
    except _Fallback:
        return None
    if olo is None or ohi is None:
        return None  # float-valued body: in-order fold only
    if total_count * max(abs(olo), abs(ohi)) > _INT_GUARD:
        return None
    if type(out) is int:
        # element-free body: count exact copies of one scalar
        return (out * count,)
    if not isinstance(out, _np.ndarray) or out.dtype.kind != "i":
        return None
    return (int(out.sum()),)


def _check(lo: int, hi: int) -> Tuple[int, int]:
    if lo < -_INT_GUARD or hi > _INT_GUARD:
        raise _Fallback()
    return lo, hi


def _is_int_operand(value: Any) -> bool:
    if isinstance(value, bool):
        raise _Fallback()
    if isinstance(value, int):
        return True
    if isinstance(value, float):
        return False
    # an ndarray we built: int64 or float64 by construction
    return value.dtype.kind == "i"


def _vec(expr: ast.Expr, grids: Dict[str, Tuple[Any, int, int]],
         values: Dict[ast.Expr, Any]):
    """Evaluate a recognized kernel body to ``(value, lo, hi)``.

    ``value`` is an ndarray (int64/float64, broadcastable to the domain)
    or a Python scalar; ``lo``/``hi`` bound integer results (exact for
    scalars, conservative intervals for arrays) and are ``None`` for
    float results.  Raises :class:`_Fallback` on anything that cannot be
    proven equivalent to the scalar loop.
    """
    if isinstance(expr, ast.Var):
        grid = grids.get(expr.name)
        if grid is not None:
            return grid
        return _scalar_leaf(values[expr])
    if isinstance(expr, ast.NatLit):
        return _leaf_int(expr.value)
    if isinstance(expr, ast.RealLit):
        return float(expr.value), None, None
    if isinstance(expr, ast.Const):
        return _scalar_leaf(values[expr])
    if isinstance(expr, ast.Subscript):
        return _gather(expr, grids, values)
    if isinstance(expr, ast.Arith):
        left = _vec(expr.left, grids, values)
        right = _vec(expr.right, grids, values)
        return _arith(expr.op, left, right)
    raise _Fallback()  # pragma: no cover - recognition is the gate


def _leaf_int(value: int):
    if abs(value) > _INT_GUARD:
        raise _Fallback()
    return value, value, value


def _scalar_leaf(value: Any):
    """A bare Var/Const input used as a number (not subscripted)."""
    if isinstance(value, bool):
        raise _Fallback()
    if isinstance(value, int):
        return _leaf_int(value)
    if isinstance(value, float):
        return value, None, None
    raise _Fallback()  # array/set/... — scalar path raises EvalError


def _gather(expr: ast.Subscript, grids, values):
    operand = values[expr.array]
    if not isinstance(operand, Array) or operand.rank != len(expr.indices):
        raise _Fallback()  # scalar path raises its own error
    block, lo, hi = _dense_block(operand)
    index_grids = []
    for axis, index_expr in enumerate(expr.indices):
        grid, glo, ghi = _vec(index_expr, grids, values)
        if glo is None:  # float-typed index: scalar path raises ⊥
            raise _Fallback()
        extent = operand.dims[axis]
        if isinstance(grid, int):
            if not 0 <= grid < extent:
                raise _Fallback()  # out of bounds somewhere → ⊥
        elif glo < 0 or ghi >= extent:
            # conservative interval may be wrong — ask the actual grid
            if int(grid.min()) < 0 or int(grid.max()) >= extent:
                raise _Fallback()
        index_grids.append(grid)
    gathered = block[tuple(index_grids)]
    return gathered, lo, hi


def _arith(op: str, left, right):
    a, la, ha = left
    b, lb, hb = right
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        # exact Python arithmetic, the very code the scalar loop runs
        # (imported lazily: eval imports this module for dispatch)
        from repro.core.eval import apply_arith
        try:
            result = apply_arith(op, a, b)
        except EvalError:  # ⊥ (zero divisor, real %) → scalar raises it
            raise _Fallback() from None
        if isinstance(result, int):
            return _leaf_int(result)
        return result, None, None
    int_a = _is_int_operand(a)
    int_b = _is_int_operand(b)
    if int_a and int_b:
        return _int_arith(op, a, la, ha, b, lb, hb)
    return _float_arith(op, a, int_a, b, int_b)


def _int_arith(op: str, a, la, ha, b, lb, hb):
    if op == "+":
        lo, hi = _check(la + lb, ha + hb)
        return a + b, lo, hi
    if op == "-":  # monus: clamp at zero, like apply_arith on nats
        _check(la - hb, ha - lb)  # the pre-clamp intermediate
        return _np.maximum(a - b, 0), max(0, la - hb), max(0, ha - lb)
    if op == "*":
        corners = (la * lb, la * hb, ha * lb, ha * hb)
        lo, hi = _check(min(corners), max(corners))
        return a * b, lo, hi
    # `/` and `%`: any zero divisor means some cell is ⊥
    if isinstance(b, int):
        if b == 0:
            raise _Fallback()
    elif bool((b == 0).any()):
        raise _Fallback()
    if op == "/":
        bound = max(abs(la), abs(ha)) + 1
        return a // b, -bound, bound
    if op == "%":
        bound = max(abs(lb), abs(hb))
        return a % b, -bound, bound
    raise _Fallback()  # pragma: no cover - ARITH_OPS is exhaustive


def _float_arith(op: str, a, int_a: bool, b, int_b: bool):
    # mixed nat/real promotes exactly like apply_arith: float(x) op float(y)
    if int_a and isinstance(a, int):
        a = float(a)
    if int_b and isinstance(b, int):
        b = float(b)
    if op == "+":
        return a + b, None, None
    if op == "-":
        return a - b, None, None
    if op == "*":
        return a * b, None, None
    if op == "/":
        if isinstance(b, float):
            if b == 0.0:
                raise _Fallback()
        elif bool((b == 0).any()):
            raise _Fallback()
        return a / b, None, None
    raise _Fallback()  # real % is ⊥ — the scalar loop raises it


__all__ = ["Kernel", "recognize", "recognize_sum", "execute",
           "execute_range", "execute_elements", "available",
           "MIN_CELLS", "ENABLED"]
