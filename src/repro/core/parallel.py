"""Sharded parallel execution of tabulation and Σ.

The paper's array constructs are *functions over rectangular index
domains*: a ``Tabulate`` applies its defining function independently at
every index, and ``Σ`` folds a body over ``canonical_elements`` of its
source.  Both are embarrassingly parallel — this module partitions a
tabulation domain into contiguous ranges of *flattened row-major cells*
(the block tiling of "An Array Algebra": the index along axis ``a`` of
flat position ``p`` is ``(p // stride_a) % extent_a``, so skewed shapes
like ``(2, 500000)`` still yield ``workers`` balanced shards) and a Σ
source into contiguous slices of its canonical element list, executes
the shards on a worker pool, and merges results back **in index order**
so the output is bit-identical to the serial loop.

Fused shard-kernel execution (docs/PARALLEL.md, docs/VECTOR_BACKEND.md):
when the parent recognizes a tabulation body as a numpy kernel
(:func:`repro.core.kernels.recognize`), process shards skip the scalar
interpreter entirely — each worker runs
:func:`~repro.core.kernels.execute_range` over its cell range against
the *mapped* operand segments and writes the result ndarray straight
into its slice of the parent's output slab (outcome ``"vec"``).  Decline
proofs are evaluated against full-domain index bounds so they are
identical in every shard; the only shard-local declines imply a ⊥ cell,
whose scalar fallback raises and reruns the construct serially.
Unprobed Σ over an int element slab gets the analogous treatment:
workers fold their slice vectorized under the ``INT_GUARD`` overflow
proof and return exact partial sums (outcome ``"vsum"``).

Discipline (same proof-or-fallback contract as :mod:`repro.core.kernels`):

* Every entry point returns the finished value or ``None``; ``None``
  means "run the scalar loop" and is the answer whenever parallel
  execution cannot *prove* it reproduces serial results — pool
  unavailable, probe unforkable, payload unpicklable, or any shard
  raising anything at all.
* **Strict ⊥ and error identity**: when any shard fails (⊥ or
  otherwise) the remaining shards are cancelled best-effort, *all*
  parallel work — including worker probe counters and every
  shared-memory segment — is discarded, and the caller's serial loop
  reruns the whole construct.  The serial rerun raises exactly the
  error a serial evaluation always raised (same reason, same probe
  counts), so failure semantics cannot drift.
* **Float-exact Σ**: workers return their slice's body *values*, never
  partial sums; the parent folds every value left-to-right in canonical
  order.  Float addition is non-associative, so merging partial sums
  would change low bits — folding serially over parallel-computed
  values cannot.  (Integer slabs may be summed vectorized: integer
  addition is associative, and the ``INT_GUARD`` overflow check keeps
  the int64 accumulation exact.)
* **Probe exactness**: counters are single-writer (see
  :mod:`repro.obs.metrics`), so each worker reports into a private
  probe from ``probe.fork()`` and the parent merges the finished
  workers back in shard order.  A probe that cannot fork opts out of
  parallelism entirely.

Backends: ``"thread"`` shares the interpreter (no pickling, no copies;
the GIL serializes pure-Python bodies, so it helps only when bodies
release the GIL, e.g. numpy-heavy primitives) and ``"process"`` forks
true CPU-parallel workers that re-interpret the shard body against
shipped bindings (a worker that cannot reconstruct the body — native
primitives in scope, unpicklable values — fails its shard and the
whole construct falls back to serial).

Shared-memory transport (the process backend's wire format)
-----------------------------------------------------------

Process shards used to pickle one boxed Python object per element in
both directions, which made workers *lose* to serial on exactly the
large inputs they exist for.  Dense-representable data now travels as
``multiprocessing.shared_memory`` segments instead:

* **payloads** — an operand :class:`~repro.objects.array.Array` with a
  dense block of at least ``SHM_MIN_BYTES`` is exported *once* into a
  segment and referenced by name from every shard (instead of being
  re-pickled per shard), and a Σ's scalar element list is probed into
  one segment each worker slices by ``(lo, hi)``.  Workers adopt the
  mapped operands as **read-only views** — no defensive copy-out; the
  segments stay mapped for the evaluation's lifetime (and past the
  return, since boxed results may alias them — see
  ``_WORKER_SEGMENTS``), and each avoided copy is counted into the
  worker probe's ``shm_copies_avoided``;
* **results** — the parent pre-creates one output slab (8 bytes per
  cell), each worker probes its boxed shard values dense
  (:func:`~repro.objects.dense.probe_block`) and writes them directly
  into its mapped region as int64/float64 (bools travel as int64), and
  the parent stitches the slab into one backing ndarray with no
  per-element boxing.  A shard whose values are not dense-representable
  returns boxed values through pickle as before, and the parent boxes
  the neighbouring slab regions to match — mixed outcomes degrade,
  they never fail.

Segment lifecycle: the parent creates, forked workers attach (sharing
the parent's resource tracker, so no extra registration to undo), and
the parent unlinks in a ``finally`` on **every** exit path, success or
strict-⊥ discard alike.  ``shm_live_segments()``
exposes the live count for leak assertions; an atexit backstop unlinks
stragglers.  The probe counters ``shm_segments`` / ``shm_bytes`` /
``shards_zero_copy`` record each successful dispatch's transport
economy (see ``docs/OBSERVABILITY.md``).

``REPRO_NO_PARALLEL=1`` disables every dispatch unconditionally;
``REPRO_NO_SHM=1`` keeps sharding but falls back to the boxed pickle
wire format; ``REPRO_NO_DENSE=1`` implies no shared-memory transport
(there are no dense blocks to ship) *and* is propagated to workers so
a no-dense parent never receives dense-backed shard results.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import ast
from repro.core.fastpath import DispatchConfig
from repro.objects import dense
from repro.objects.array import Array, iter_indices

try:  # numpy is optional; the shm transport degrades to pickle without it
    import numpy as _np
except Exception:  # pragma: no cover - exercised by the no-numpy CI lane
    _np = None

try:
    from multiprocessing import shared_memory as _shm_mod
except Exception:  # pragma: no cover - platforms without shm
    _shm_mod = None

#: kill switch — mirrors ``kernels.ENABLED`` / ``REPRO_NO_VECTORIZE``
ENABLED = os.environ.get("REPRO_NO_PARALLEL", "") != "1"

#: kill switch for the shared-memory wire format only (sharding still
#: runs, over the boxed pickle transport)
SHM_ENABLED = os.environ.get("REPRO_NO_SHM", "") != "1"

#: operand arrays below this many bytes ride the ordinary pickle path —
#: a segment costs a file descriptor and two syscalls, so tiny payloads
#: are cheaper to copy (one OS page is the natural floor)
SHM_MIN_BYTES = 4096

#: how long ``shutdown_pools`` waits for process workers to exit before
#: escalating to ``terminate()`` and then ``kill()`` — a wedged worker
#: must never hang interpreter exit
SHUTDOWN_GRACE = 2.0


def _worker_config(config: DispatchConfig) -> DispatchConfig:
    """The parent's tuning with sharding turned off.

    Workers must never re-shard (a saturated pool would deadlock), but
    every other dispatch decision — the vectorization floor, the
    set-engine switch — must match the parent's, or a sharded run's
    nested tabulations and group-bys would take different paths (and
    report different counters) than the serial run they must agree
    with.  ``adaptive`` is deliberately dropped: with ``workers=0`` the
    shard decision never arises, and the vectorization floor stays the
    propagated ``min_cells`` in both modes.
    """
    return DispatchConfig(min_cells=config.min_cells, workers=0,
                          backend=config.backend, setops=config.setops)


#: set while the current *thread* is executing a shard, so nested
#: tabulations inside a shard body take the serial path even on the
#: shared-evaluator thread backend
_WORKER = threading.local()


class _Cancelled(Exception):
    """A shard aborted because a sibling already failed."""


def in_worker() -> bool:
    """Is the current thread executing inside a shard?"""
    return getattr(_WORKER, "active", False)


def available(config: Optional[DispatchConfig]) -> bool:
    """Can a parallel dispatch be attempted under ``config`` at all?

    The cells floor — static ``min_cells`` or the adaptive projection
    (:meth:`~repro.core.fastpath.DispatchConfig.wants_shards`) — is the
    *caller's* gate; this checks everything else.
    """
    return (
        ENABLED
        and config is not None
        and config.workers > 1
        and not in_worker()
    )


def split(extent: int, shards: int) -> List[Tuple[int, int]]:
    """Partition ``range(extent)`` into ≤ ``shards`` contiguous, balanced,
    non-empty ``(lo, hi)`` runs, in index order."""
    shards = min(shards, extent)
    if shards <= 0:
        return []
    base, extra = divmod(extent, shards)
    out = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


# -- worker pools -----------------------------------------------------------

_POOLS: Dict[Tuple[str, int], Any] = {}
_POOL_LOCK = threading.Lock()


def _get_pool(backend: str, workers: int):
    """The cached pool for ``(backend, workers)``, or ``None``.

    Pools are lazily created and reused across dispatches so process
    forking is paid once per configuration, not once per tabulation —
    the serving path runs many queries against one warm pool.
    """
    key = (backend, workers)
    with _POOL_LOCK:
        pool = _POOLS.get(key)
        if pool is not None:
            return pool
        if backend == "thread":
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        elif backend == "process":
            try:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                context = multiprocessing.get_context("fork")
                pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
            except (ImportError, ValueError, OSError):
                return None  # no fork on this platform -> serial fallback
        else:
            return None
        _POOLS[key] = pool
        return pool


def _evict_pool(backend: str, workers: int) -> None:
    """Drop (and shut down) a pool that broke mid-dispatch."""
    with _POOL_LOCK:
        pool = _POOLS.pop((backend, workers), None)
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def shutdown_pools(grace: float = SHUTDOWN_GRACE) -> None:
    """Shut down every cached pool without ever hanging (atexit, tests).

    ``shutdown(wait=True)`` would join worker processes indefinitely —
    one wedged worker (stuck in a native call, ignoring SIGTERM) then
    hangs interpreter exit.  Instead: cancel pending futures, stop the
    executors without waiting, give process workers ``grace`` seconds
    *total* to finish, then escalate ``terminate()`` → ``kill()``.
    Thread workers cannot be killed; their shards observe the cancel
    event and the cancelled futures, so they drain on their own.
    """
    with _POOL_LOCK:
        pools = dict(_POOLS)
        _POOLS.clear()
    for (backend, _workers), pool in pools.items():
        # grab the worker handles *before* shutdown() drops its
        # ``_processes`` dict, or there would be nothing to escalate on
        procs = getattr(pool, "_processes", None)
        processes = list(procs.values()) if isinstance(procs, dict) else []
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        if backend != "process":
            continue
        deadline = time.monotonic() + grace
        for proc in processes:
            try:
                proc.join(max(0.0, deadline - time.monotonic()))
            except Exception:
                pass
        for proc in processes:
            if proc.is_alive():
                try:
                    proc.terminate()
                except Exception:
                    pass
        for proc in processes:
            if proc.is_alive():
                try:
                    proc.join(0.5)
                    if proc.is_alive():
                        proc.kill()
                        proc.join(0.5)
                except Exception:
                    pass


def _collect(futures: Sequence[Future], cancel: threading.Event,
             backend: str, workers: int) -> Optional[List[Any]]:
    """Await every shard; any failure cancels the rest and yields ``None``.

    Shards that already run are drained (their inputs are immutable, so
    letting them finish is safe); a broken process pool is evicted so
    the next dispatch gets a fresh one instead of failing forever.
    """
    results: List[Any] = []
    failed = False
    for future in futures:
        try:
            results.append(future.result())
        except BaseException:
            failed = True
            cancel.set()
            for other in futures:
                other.cancel()
            results.append(None)
    if failed:
        if backend == "process":
            pool = _POOLS.get((backend, workers))
            if pool is not None and getattr(pool, "_broken", False):
                _evict_pool(backend, workers)
        return None
    return results


# -- shared-memory segments -------------------------------------------------

_SHM_SEQ = itertools.count()
_LIVE_SEGMENTS: Dict[str, Any] = {}
_SHM_LOCK = threading.Lock()


def _shm_transport_on() -> bool:
    """Can payload/result slabs ride shared memory right now?

    Requires the platform module, numpy, the ``REPRO_NO_SHM`` switch
    off, and the dense store on — with ``REPRO_NO_DENSE=1`` there are
    no blocks to ship and workers must return boxed values anyway.
    """
    return (SHM_ENABLED and _shm_mod is not None and _np is not None
            and dense.store_enabled())


def _shm_create(nbytes: int, segments: Optional[list] = None):
    """Create one tracked segment of ``nbytes`` bytes, or ``None``.

    The name carries a ``repro_shm_`` prefix plus pid so leak checks
    can spot stragglers in ``/dev/shm``; the live registry backs the
    :func:`shm_live_segments` assertion the test suite runs.  A created
    segment is appended to ``segments`` so the caller's ``finally`` can
    release it on every exit path.
    """
    if not _shm_transport_on() or nbytes <= 0:
        return None
    name = f"repro_shm_{os.getpid()}_{next(_SHM_SEQ)}"
    try:
        seg = _shm_mod.SharedMemory(name=name, create=True, size=nbytes)
    except Exception:
        return None
    with _SHM_LOCK:
        _LIVE_SEGMENTS[seg.name] = seg
    if segments is not None:
        segments.append(seg)
    return seg


def _shm_release(seg) -> None:
    """Close and unlink one parent-created segment (idempotent)."""
    with _SHM_LOCK:
        _LIVE_SEGMENTS.pop(seg.name, None)
    try:
        seg.close()
    except Exception:
        pass
    try:
        seg.unlink()
    except Exception:
        pass


def shm_live_segments() -> int:
    """How many parent-created segments are currently live.

    Zero whenever no dispatch is in flight — the test suite asserts
    this after every test, and CI checks ``/dev/shm`` stays clean.
    """
    with _SHM_LOCK:
        return len(_LIVE_SEGMENTS)


def shm_unlink_all() -> None:
    """Release every live segment (atexit backstop, test isolation)."""
    with _SHM_LOCK:
        segments = list(_LIVE_SEGMENTS.values())
        _LIVE_SEGMENTS.clear()
    for seg in segments:
        try:
            seg.close()
        except Exception:
            pass
        try:
            seg.unlink()
        except Exception:
            pass


def _shm_attach(name: str):
    """Attach an existing segment by name (worker side).

    Workers are forked, so they share the parent's resource-tracker
    process: the attach-side registration lands in the same name set
    the parent's create already populated, and the parent's ``unlink``
    retires it exactly once.  (A spawn-context pool would need an
    explicit ``resource_tracker.unregister`` here to avoid a second
    tracker claiming the name — the pool factory only ever uses fork.)
    """
    return _shm_mod.SharedMemory(name=name)


def _tag_dtype(tag: str):
    """The natural numpy dtype of a dense-block tag."""
    if tag == dense.TAG_REAL:
        return _np.float64
    if tag == dense.TAG_BOOL:
        return _np.bool_
    return _np.int64


def _slab_dtype(tag: str):
    """The 8-byte output-slab dtype for a tag (bools travel as int64)."""
    return _np.float64 if tag == dense.TAG_REAL else _np.int64


def _copy_into(seg, data) -> None:
    """Copy a contiguous ndarray into the head of a segment's buffer."""
    view = _np.frombuffer(seg.buf, dtype=data.dtype, count=data.size)
    try:
        view[:] = data.ravel()
    finally:
        del view


def _atexit_cleanup() -> None:
    """Bounded pool shutdown plus segment unlink, in that order."""
    shutdown_pools()
    shm_unlink_all()


atexit.register(_atexit_cleanup)


def _fork_probes(probe: Any, count: int) -> Optional[List[Any]]:
    """``count`` private worker probes, or ``None`` if ``probe`` cannot
    be forked/merged (which declines the whole parallel dispatch)."""
    if probe is None:
        return []
    fork = getattr(probe, "fork", None)
    if fork is None or not hasattr(probe, "merge"):
        return None
    probes = []
    for _ in range(count):
        forked = fork()
        if forked is None:
            return None
        probes.append(forked)
    return probes


def _merge_probes(probe: Any, worker_probes: List[Any],
                  shards: int, cells: int) -> None:
    """Fold finished worker probes into the parent, in shard order, and
    record the dispatch itself."""
    if probe is None:
        return
    for worker_probe in worker_probes:
        probe.merge(worker_probe)
    probe.on_parallel(shards, cells)


# -- interpreter (repro.core.eval) entry points -----------------------------


def _unflatten(pos: int, extents: Sequence[int]) -> List[int]:
    """The row-major index vector of flat cell ``pos`` — the inverse of
    "An Array Algebra" block addressing: axis ``a`` of ``pos`` is
    ``(pos // stride_a) % extent_a``."""
    index = [0] * len(extents)
    for axis in range(len(extents) - 1, -1, -1):
        extent = extents[axis]
        index[axis] = pos % extent
        pos //= extent
    return index


def _interp_cells(evaluator, expr: ast.Tabulate, env, extents: Sequence[int],
                  lo: int, hi: int, cancel: Optional[threading.Event]) -> list:
    """Evaluate flat row-major cells ``lo..hi`` of the tabulation domain —
    exactly the cells the serial loop would produce at those positions.

    An odometer walks the index vector; the per-axis ``Env`` chain is
    rebuilt only from the deepest axis that changed, so the amortized
    extends per cell match the serial loop's nesting."""
    from repro.core.eval import Env

    values: list = []
    eval_ = evaluator._eval
    body = expr.body
    variables = expr.vars
    rank = len(extents)
    index = _unflatten(lo, extents)
    chain: list = [None] * rank
    parent = env
    for axis in range(rank):
        parent = Env.extend(parent, variables[axis], index[axis])
        chain[axis] = parent
    for _ in range(lo, hi):
        if cancel is not None and cancel.is_set():
            raise _Cancelled()
        values.append(eval_(body, chain[rank - 1]))
        axis = rank - 1
        while axis >= 0:
            index[axis] += 1
            if index[axis] < extents[axis]:
                break
            index[axis] = 0
            axis -= 1
        if axis < 0:
            break  # walked off the domain: hi was the total
        parent = env if axis == 0 else chain[axis - 1]
        for a in range(axis, rank):
            parent = Env.extend(parent, variables[a], index[a])
            chain[a] = parent
    return values


def _interp_sum_slice(evaluator, expr: ast.Sum, env, elements: Sequence[Any],
                      lo: int, hi: int,
                      cancel: Optional[threading.Event]) -> list:
    """Body values for elements ``lo..hi`` of the canonical order."""
    from repro.core.eval import Env

    values: list = []
    eval_ = evaluator._eval
    body = expr.body
    var = expr.var
    for k in range(lo, hi):
        if cancel is not None and cancel.is_set():
            raise _Cancelled()
        values.append(eval_(body, Env.extend(env, var, elements[k])))
    return values


def _guarded(fn):
    """Run ``fn`` with the worker flag set on this thread."""
    _WORKER.active = True
    try:
        return fn()
    finally:
        _WORKER.active = False


def _env_bindings(env, needed) -> Optional[List[Tuple[str, Any]]]:
    """The innermost binding of each ``needed`` name from an
    :class:`~repro.core.eval.Env` chain; ``None`` if any is unbound
    (the serial loop raises the canonical error for that)."""
    bindings: List[Tuple[str, Any]] = []
    seen = set()
    node = env
    while node is not None and len(seen) < len(needed):
        if node.name in needed and node.name not in seen:
            seen.add(node.name)
            bindings.append((node.name, node.value))
        node = node.parent
    if len(seen) < len(needed):
        return None
    return bindings


def _dispatch_threads(evaluator, probe, config, make_task, shards):
    """Common thread-backend driver: fork probes, build one worker
    evaluator per shard (or share the parent when unprobed), run, and
    return ``(parts, worker_probes)`` or ``None``."""
    from repro.core.eval import Evaluator

    worker_probes = _fork_probes(probe, len(shards))
    if worker_probes is None:
        return None
    pool = _get_pool("thread", config.workers)
    if pool is None:
        return None
    cancel = threading.Event()
    tasks = []
    for position, (lo, hi) in enumerate(shards):
        if probe is None:
            worker = evaluator  # read-only sharing; guard blocks re-entry
        else:
            worker = Evaluator(evaluator.prims,
                               probe=worker_probes[position],
                               parallel=_worker_config(config))
        tasks.append(make_task(worker, lo, hi, cancel))
    futures = [pool.submit(_guarded, task) for task in tasks]
    parts = _collect(futures, cancel, "thread", config.workers)
    if parts is None:
        return None
    return parts, worker_probes


def tabulate_interp(evaluator, expr: ast.Tabulate, env,
                    extents: Sequence[int], total: int) -> Optional[Array]:
    """Parallel interpreter tabulation, or ``None`` for the scalar loop."""
    config = evaluator.parallel
    shards = split(total, config.workers)
    if len(shards) < 2:
        return None
    probe = evaluator.probe
    backend = config.shard_backend()
    started = time.perf_counter()
    if backend == "process":
        result = _tabulate_process(
            expr, _env_bindings_for(expr, env), extents, shards, probe,
            config)
        if result is not None and (config.adaptive or config.cost is not None):
            config.observe("process", total, time.perf_counter() - started)
        return result

    def make_task(worker, lo, hi, cancel):
        return lambda: _interp_cells(worker, expr, env, extents, lo, hi,
                                     cancel)

    outcome = _dispatch_threads(evaluator, probe, config, make_task, shards)
    if outcome is None:
        return None
    parts, worker_probes = outcome
    values = [value for part in parts for value in part]
    _merge_probes(probe, worker_probes, len(shards), total)
    if probe is not None:
        probe.on_cells(total)
    if config.adaptive or config.cost is not None:
        config.observe("thread", total, time.perf_counter() - started)
    return Array(extents, values)


def tabulate_kernel_interp(evaluator, expr: ast.Tabulate, env,
                           extents: Sequence[int],
                           total: int) -> Optional[Array]:
    """Fused shard-kernel tabulation (interpreter), or ``None``.

    Only the process backend fuses: each forked worker runs
    :func:`repro.core.kernels.execute_range` on its own core against
    mapped operand segments.  A thread pool would gain nothing over the
    serial kernel (one numpy call already saturates the process), so
    other backends decline and the caller runs :func:`kernels.execute`
    serially.
    """
    config = evaluator.parallel
    if config.shard_backend() != "process":
        return None
    shards = split(total, config.workers)
    if len(shards) < 2:
        return None
    return _tabulate_process(expr, _env_bindings_for(expr, env), extents,
                             shards, evaluator.probe, config, kernel=True)


def sum_interp(evaluator, expr: ast.Sum, env,
               elements: Sequence[Any]) -> Optional[Tuple[Any]]:
    """Parallel interpreter Σ: ``(total,)`` on success, else ``None``.

    The 1-tuple distinguishes a computed total (which may itself be 0 or
    any falsy value) from the fallback signal.
    """
    config = evaluator.parallel
    shards = split(len(elements), config.workers)
    if len(shards) < 2:
        return None
    probe = evaluator.probe
    backend = config.shard_backend()
    started = time.perf_counter()
    if backend == "process":
        result = _sum_process(expr, _env_bindings_for(expr, env), elements,
                              shards, probe, config)
        if result is not None and (config.adaptive or config.cost is not None):
            config.observe("process", len(elements),
                           time.perf_counter() - started)
        return result

    def make_task(worker, lo, hi, cancel):
        return lambda: _interp_sum_slice(worker, expr, env, elements,
                                         lo, hi, cancel)

    outcome = _dispatch_threads(evaluator, probe, config, make_task, shards)
    if outcome is None:
        return None
    parts, worker_probes = outcome
    _merge_probes(probe, worker_probes, len(shards), len(elements))
    total: Any = 0
    for part in parts:
        for value in part:  # canonical order: float-exact vs serial
            total = total + value
    if config.adaptive or config.cost is not None:
        config.observe("thread", len(elements),
                       time.perf_counter() - started)
    return (total,)


def _env_bindings_for(expr, env):
    """Bindings a process worker needs to rebuild ``expr``'s body env."""
    bound = set(expr.vars) if isinstance(expr, ast.Tabulate) else {expr.var}
    needed = ast.free_vars(expr.body) - bound
    return _env_bindings(env, needed)


# -- compiled engine (repro.core.compile) entry points ----------------------


def tabulate_compiled(compiler, expr: ast.Tabulate, scope: Tuple[str, ...],
                      body_code, env: List[Any], extents: Sequence[int],
                      total: int) -> Optional[Array]:
    """Parallel compiled tabulation, or ``None`` for the scalar loop."""
    config = compiler.parallel
    shards = split(total, config.workers)
    if len(shards) < 2:
        return None
    probe = compiler.probe
    backend = config.shard_backend()
    started = time.perf_counter()
    if backend == "process":
        if probe is not None:
            # process workers re-interpret the body; interpreter-side
            # counters are only provably identical to the *interpreter's*
            # serial counters, so the compiled engine declines
            return None
        bindings = _scope_bindings(expr, scope, env)
        result = _tabulate_process(expr, bindings, extents, shards, None,
                                   config)
        if result is not None and (config.adaptive or config.cost is not None):
            config.observe("process", total, time.perf_counter() - started)
        return result
    worker_probes = _fork_probes(probe, len(shards))
    if worker_probes is None:
        return None
    pool = _get_pool("thread", config.workers)
    if pool is None:
        return None
    cancel = threading.Event()
    extents_list = list(extents)

    def make_task(position: int, lo: int, hi: int):
        def task():
            if probe is None:
                body = body_code  # pure closures: safe to share
            else:
                from repro.core.compile import Compiler

                worker = Compiler(compiler.prims,
                                  probe=worker_probes[position],
                                  parallel=_worker_config(config))
                body = worker.compile(expr.body, scope + expr.vars)
            values: list = []
            index = _unflatten(lo, extents_list)
            rank = len(extents_list)
            for _ in range(lo, hi):
                if cancel.is_set():
                    raise _Cancelled()
                values.append(body(env + index))
                axis = rank - 1
                while axis >= 0:
                    index[axis] += 1
                    if index[axis] < extents_list[axis]:
                        break
                    index[axis] = 0
                    axis -= 1
                if axis < 0:
                    break
            return values

        return task

    futures = [
        pool.submit(_guarded, make_task(position, lo, hi))
        for position, (lo, hi) in enumerate(shards)
    ]
    parts = _collect(futures, cancel, "thread", config.workers)
    if parts is None:
        return None
    values = [value for part in parts for value in part]
    _merge_probes(probe, worker_probes, len(shards), total)
    if probe is not None:
        probe.on_cells(total)
    if config.adaptive or config.cost is not None:
        config.observe("thread", total, time.perf_counter() - started)
    return Array(extents, values)


def tabulate_kernel_compiled(compiler, expr: ast.Tabulate,
                             scope: Tuple[str, ...], env: List[Any],
                             extents: Sequence[int],
                             total: int) -> Optional[Array]:
    """Fused shard-kernel tabulation (compiled engine), or ``None``.

    Unlike the scalar process path, a *probed* compiled dispatch is
    allowed here — but only as all-or-nothing (``vec_only``): when every
    shard vectorizes, worker probes carry no interpreter counters (the
    kernel evaluates zero AST nodes), so merging them cannot pollute the
    compiled engine's counts; if any shard falls back to the scalar
    interpreter the whole dispatch declines instead.
    """
    config = compiler.parallel
    if config.shard_backend() != "process":
        return None
    shards = split(total, config.workers)
    if len(shards) < 2:
        return None
    probe = compiler.probe
    bindings = _scope_bindings(expr, scope, env)
    return _tabulate_process(expr, bindings, extents, shards, probe, config,
                             kernel=True, vec_only=probe is not None)


def sum_compiled(compiler, expr: ast.Sum, scope: Tuple[str, ...],
                 body_code, env: List[Any],
                 elements: Sequence[Any]) -> Optional[Tuple[Any]]:
    """Parallel compiled Σ: ``(total,)`` on success, else ``None``."""
    config = compiler.parallel
    shards = split(len(elements), config.workers)
    if len(shards) < 2:
        return None
    probe = compiler.probe
    backend = config.shard_backend()
    started = time.perf_counter()
    if backend == "process":
        if probe is not None:
            return None  # see tabulate_compiled
        bindings = _scope_bindings(expr, scope, env)
        result = _sum_process(expr, bindings, elements, shards, None,
                              config)
        if result is not None and (config.adaptive or config.cost is not None):
            config.observe("process", len(elements),
                           time.perf_counter() - started)
        return result
    worker_probes = _fork_probes(probe, len(shards))
    if worker_probes is None:
        return None
    pool = _get_pool("thread", config.workers)
    if pool is None:
        return None
    cancel = threading.Event()

    def make_task(position: int, lo: int, hi: int):
        def task():
            if probe is None:
                body = body_code
            else:
                from repro.core.compile import Compiler

                worker = Compiler(compiler.prims,
                                  probe=worker_probes[position],
                                  parallel=_worker_config(config))
                body = worker.compile(expr.body, scope + (expr.var,))
            values: list = []
            for k in range(lo, hi):
                if cancel.is_set():
                    raise _Cancelled()
                values.append(body(env + [elements[k]]))
            return values

        return task

    futures = [
        pool.submit(_guarded, make_task(position, lo, hi))
        for position, (lo, hi) in enumerate(shards)
    ]
    parts = _collect(futures, cancel, "thread", config.workers)
    if parts is None:
        return None
    _merge_probes(probe, worker_probes, len(shards), len(elements))
    total: Any = 0
    for part in parts:
        for value in part:
            total = total + value
    if config.adaptive or config.cost is not None:
        config.observe("thread", len(elements),
                       time.perf_counter() - started)
    return (total,)


def _scope_bindings(expr, scope: Tuple[str, ...],
                    env: List[Any]) -> Optional[List[Tuple[str, Any]]]:
    """Free-variable bindings of ``expr.body`` from a compiled env list
    (innermost occurrence of a shadowed name wins)."""
    bound = set(expr.vars) if isinstance(expr, ast.Tabulate) else {expr.var}
    needed = ast.free_vars(expr.body) - bound
    latest: Dict[str, Any] = {}
    for name, value in zip(scope, env):
        if name in needed:
            latest[name] = value
    if len(latest) < len(needed):
        return None
    return list(latest.items())


# -- the process backend ----------------------------------------------------
#
# Workers are forked interpreters: the shard body is shipped as the AST
# plus the values of its free variables, and re-evaluated by a fresh
# serial Evaluator in the child.  Anything that cannot make the trip —
# native primitives in the body, unpicklable environment values — fails
# the shard, which falls the whole construct back to serial.  Dense data
# rides shared-memory segments (see the module docstring); everything
# else keeps the boxed pickle format, where Array values are probed
# dense first so a block-backed Array's ``__reduce__`` ships its raw
# buffer + dtype tag instead of one object pickle per element.


def _prime_dense(values) -> None:
    """Probe Array values for dense blocks before they hit pickle.

    Idempotent (the probe caches on the instance) and purely an
    encoding optimization: workers rebuild identical values either way.
    Skipped when the store is off so that lane keeps the boxed format.
    """
    if not dense.store_enabled():
        return
    for value in values:
        if isinstance(value, Array):
            value.dense_block()


def _contains_prim(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Prim):
        return True
    return any(_contains_prim(child) for child in expr.children())


def _export_bindings(bindings, segments: list):
    """Split bindings into pickled ones and shared-memory references.

    An Array binding with a dense block of at least ``SHM_MIN_BYTES``
    is copied once into a segment that every shard references by name —
    the pickle path would duplicate the buffer per shard.  Returns
    ``(plain_bindings, shm_refs)`` where each ref is
    ``(name, segment, tag, dims)``.
    """
    if not _shm_transport_on():
        return list(bindings), []
    plain: List[Tuple[str, Any]] = []
    refs: List[Tuple[str, str, str, tuple]] = []
    for name, value in bindings:
        block = value.dense_block() if isinstance(value, Array) else None
        if block is not None and block.data.nbytes >= SHM_MIN_BYTES:
            seg = _shm_create(block.data.nbytes, segments)
            if seg is not None:
                _copy_into(seg, block.data)
                refs.append((name, seg.name, block.tag, value.dims))
                continue
        plain.append((name, value))
    return plain, refs


def _payload(kind: str, expr, plain, shm_binds, config: DispatchConfig,
             probed: bool, extents=None, lo: int = 0, hi: int = 0,
             elements=None, elements_shm=None, out=None,
             kernel: bool = False) -> dict:
    """One shard's wire payload (pickled small; bulk data is in shm).

    ``lo``/``hi`` bound the shard's flat row-major *cell* range for
    tabulations, its element range for Σ.  ``out`` is
    ``(segment_name, cell_lo, cell_hi)`` naming the region of the
    parent's output slab this shard owns, or ``None`` for the boxed
    result format.  ``kernel`` tells the worker the parent recognized
    the body as a numpy kernel — the worker re-derives the spec
    (a cheap AST scan) and attempts vectorized execution before the
    scalar fallback.  ``dense_on``/``vectorize_on`` carry the parent's
    kill-switch state so a warm worker forked under a different
    configuration still takes exactly the paths the parent's own serial
    run would.
    """
    from repro.core import kernels

    return {
        "kind": kind,
        "expr": expr,
        "bindings": plain,
        "shm_bindings": shm_binds,
        "extents": extents,
        "lo": lo,
        "hi": hi,
        "elements": elements,
        "elements_shm": elements_shm,
        "out": out,
        "kernel": kernel,
        "probed": probed,
        "min_cells": config.min_cells,
        "setops": config.setops,
        "dense_on": dense.STORE_ENABLED,
        "vectorize_on": kernels.ENABLED,
    }


def _slab_write(out, values) -> Optional[tuple]:
    """Write boxed shard values into the mapped output slab (worker side).

    Probes the values dense; on success writes them into the shard's
    region as int64/float64 (bools as int64) and returns
    ``(tag, lo, hi)`` with the probe's integer bounds (``None`` bounds
    for real/bool).  Returns ``None`` — caller ships boxed values —
    when the values are not dense-representable.
    """
    seg_name, cell_lo, cell_hi = out
    if _np is None or len(values) != cell_hi - cell_lo:
        return None
    block = dense.probe_block(values, (len(values),))
    if block is None:
        return None
    seg = _shm_attach(seg_name)
    try:
        dtype = _slab_dtype(block.tag)
        view = _np.frombuffer(seg.buf, dtype=dtype)
        try:
            view[cell_lo:cell_hi] = block.data.ravel().astype(dtype,
                                                              copy=False)
        finally:
            del view
    finally:
        seg.close()
    return (block.tag, block.lo, block.hi)


#: segments this worker process mapped for the task being returned.
#: Boxed shard results may alias the mapped operand buffers (a body can
#: evaluate to the whole operand array, whose backing block is the
#: read-only view) and the pool pickles the return value *after*
#: ``_process_worker`` exits — so segments stay open across the return
#: and are drained at the next task's entry, once the previous result
#: is guaranteed serialized.  The parent's unlink is unaffected (names
#: retire immediately); a warm worker merely keeps one task's mappings
#: until its next task or exit.
_WORKER_SEGMENTS: List[Any] = []


def _drain_worker_segments() -> None:
    """Close the previous task's mappings (see ``_WORKER_SEGMENTS``)."""
    while _WORKER_SEGMENTS:
        seg = _WORKER_SEGMENTS.pop()
        try:
            seg.close()
        except Exception:
            # an exported view not yet collected: the mapping lives
            # until process exit, which the OS cleans up
            pass


def _kernel_inputs(kernel, env):
    """Resolve kernel input leaves from the worker's rebuilt env, or
    ``None`` (an unbound name — the scalar fallback raises it)."""
    from repro.core.eval import Env

    try:
        return [
            Env.lookup(env, leaf.name) if isinstance(leaf, ast.Var)
            else leaf.value
            for leaf in kernel.inputs
        ]
    except Exception:
        return None


def _vec_shard(payload: dict, env) -> Optional[str]:
    """Run the recognized kernel over this shard's cell range (worker).

    Writes the result straight into the shard's slice of the parent's
    output slab and returns the slab tag, or ``None`` to fall back to
    the scalar interpreter.  Every ``None`` here is either shard-global
    (recognition, dtype, interval proofs — identical in all shards, see
    :func:`repro.core.kernels.execute_range`) or implies a ⊥ cell in
    this shard (so the fallback raises and the parent reruns serially).
    """
    from repro.core import kernels

    if not kernels.available():
        return None
    kernel = kernels.recognize(payload["expr"])
    if kernel is None:
        return None
    inputs = _kernel_inputs(kernel, env)
    if inputs is None:
        return None
    lo, hi = payload["lo"], payload["hi"]
    data = kernels.execute_range(kernel, payload["extents"], inputs, lo, hi)
    if data is None:
        return None
    seg_name, cell_lo, cell_hi = payload["out"]
    if data.size != cell_hi - cell_lo:
        return None
    tag = dense.TAG_REAL if data.dtype.kind == "f" else dense.TAG_INT
    seg = _shm_attach(seg_name)
    try:
        view = _np.frombuffer(seg.buf, dtype=_slab_dtype(tag))
        try:
            view[cell_lo:cell_hi] = data
        finally:
            del view
    finally:
        seg.close()
    return tag


def _vec_sum_slice(payload: dict, env, view, tag: str, count: int,
                   elo, ehi) -> Optional[tuple]:
    """Vectorized partial Σ over this shard's element slice (worker).

    ``(partial,)`` — an exact int — or ``None`` for the boxed scalar
    fold.  Gated to int element slabs; the global bounds ``elo``/``ehi``
    and total ``count`` make the overflow guard (and every other
    proof-based decline) identical across shards
    (:func:`repro.core.kernels.execute_elements`).
    """
    from repro.core import kernels

    if not kernels.available() or tag != dense.TAG_INT:
        return None
    kernel = kernels.recognize_sum(payload["expr"])
    if kernel is None:
        return None
    inputs = _kernel_inputs(kernel, env)
    if inputs is None:
        return None
    return kernels.execute_elements(
        kernel, view[payload["lo"]:payload["hi"]], (elo, ehi), count, inputs)


def _process_worker(payload_bytes: bytes):
    """Runs in the child: evaluate one shard, never raise through pickle.

    Returns ``("vec", tag, cell_lo, cell_hi, probe)`` (the kernel ran
    over the shard's cell range, writing the output slab directly),
    ``("vsum", partial, probe)`` (vectorized exact partial Σ),
    ``("shm", tag, lo, hi, probe)`` (scalar values written into the
    output slab), ``("ok", values, probe)`` (boxed result), or
    ``("err",)`` — errors are reported as data so exotic exception
    types never have to survive a pickle round-trip; the parent's
    serial rerun reproduces them.

    Mapped operand segments are adopted as **read-only views** (no
    defensive copy) and held open past the return — see
    ``_WORKER_SEGMENTS``.
    """
    from repro.core import kernels
    from repro.core.eval import Env, Evaluator

    _drain_worker_segments()
    try:
        payload = pickle.loads(payload_bytes)
        # the parent's kill-switch state wins over whatever state this
        # (possibly long-lived, possibly stale) worker forked with
        dense.STORE_ENABLED = payload["dense_on"]
        kernels.ENABLED = payload["vectorize_on"]
        probe = None
        if payload["probed"]:
            from repro.obs.metrics import EvalMetrics

            probe = EvalMetrics()
        env = None
        for name, value in payload["bindings"]:
            env = Env.extend(env, name, value)
        for name, seg_name, tag, dims in payload["shm_bindings"]:
            seg = _shm_attach(seg_name)
            _WORKER_SEGMENTS.append(seg)
            size = 1
            for dim in dims:
                size *= dim
            data = _np.frombuffer(seg.buf, dtype=_tag_dtype(tag),
                                  count=size).reshape(dims)
            data.flags.writeable = False
            env = Env.extend(env, name, Array(dims, data))
        if probe is not None and payload["shm_bindings"]:
            probe.on_shm_copies_avoided(len(payload["shm_bindings"]))
        worker_cfg = DispatchConfig(min_cells=payload["min_cells"],
                                    workers=0, setops=payload["setops"])
        worker = Evaluator({}, probe=probe, parallel=worker_cfg)
        if payload["kind"] == "tabulate":
            if payload["kernel"] and payload["out"] is not None:
                tag = _vec_shard(payload, env)
                if tag is not None:
                    return ("vec", tag, payload["out"][1],
                            payload["out"][2], probe)
            values = _interp_cells(worker, payload["expr"], env,
                                   payload["extents"], payload["lo"],
                                   payload["hi"], None)
        elif payload["elements_shm"] is not None:
            seg_name, tag, count, elo, ehi = payload["elements_shm"]
            seg = _shm_attach(seg_name)
            _WORKER_SEGMENTS.append(seg)
            view = _np.frombuffer(seg.buf, dtype=_tag_dtype(tag),
                                  count=count)
            if payload["kernel"]:
                partial = _vec_sum_slice(payload, env, view, tag, count,
                                         elo, ehi)
                if partial is not None:
                    del view
                    return ("vsum", partial[0], probe)
            try:
                elements = view[payload["lo"]:payload["hi"]].tolist()
            finally:
                del view
            values = _interp_sum_slice(worker, payload["expr"], env,
                                       elements, 0, len(elements), None)
        else:
            values = _interp_sum_slice(worker, payload["expr"], env,
                                       payload["elements"], payload["lo"],
                                       payload["hi"], None)
        if payload["out"] is not None:
            written = _slab_write(payload["out"], values)
            if written is not None:
                tag, lo_bound, hi_bound = written
                return ("shm", tag, lo_bound, hi_bound, probe)
        return ("ok", values, probe)
    except BaseException:
        return ("err",)


def _run_process_shards(payloads: List[dict],
                        config: DispatchConfig) -> Optional[List[tuple]]:
    """Pickle + dispatch shard payloads; ``None`` on any failure."""
    blobs = []
    try:
        for payload in payloads:
            blobs.append(pickle.dumps(payload))
    except Exception:
        return None
    pool = _get_pool("process", config.workers)
    if pool is None:
        return None
    cancel = threading.Event()  # unused by children; satisfies _collect
    try:
        futures = [pool.submit(_process_worker, blob) for blob in blobs]
    except Exception:
        _evict_pool("process", config.workers)
        return None
    outcomes = _collect(futures, cancel, "process", config.workers)
    if outcomes is None:
        return None
    if any(outcome[0] not in ("ok", "shm", "vec", "vsum")
           for outcome in outcomes):
        return None
    return outcomes


def _probed_for_process(probe) -> Optional[bool]:
    """Whether the child should count into an
    :class:`~repro.obs.metrics.EvalMetrics`; ``None`` declines the
    dispatch.  Children always report through ``EvalMetrics`` (arbitrary
    probe objects do not survive pickling), so a parent probe of any
    other class opts out rather than receive foreign counters."""
    if probe is None:
        return False
    from repro.obs.metrics import EvalMetrics

    if type(probe) is not EvalMetrics:
        return None
    return True


def _stitch_tabulate(outcomes, out_seg, cell_ranges, extents, total):
    """Assemble shard outcomes into ``(Array, zero_copy_count)``.

    ``"vec"`` (kernel-computed) and ``"shm"`` (scalar-computed) shards
    both landed in the output slab and stitch identically.  When every
    shard wrote the slab with one agreed tag, the whole slab becomes
    the result's dense backing in a single copy (the segment is about
    to be unlinked, so the buffer cannot be viewed in place).  Mixed
    outcomes box slab regions back in shard order and interleave them
    with the boxed shards.  ``None`` only on protocol violations,
    which fall back to serial.
    """
    zero_copy = sum(1 for outcome in outcomes
                    if outcome[0] in ("shm", "vec"))
    if zero_copy and out_seg is None:
        return None
    if zero_copy == len(outcomes):
        tags = {outcome[1] for outcome in outcomes}
        if len(tags) == 1:
            tag = tags.pop()
            data = _np.frombuffer(out_seg.buf, dtype=_slab_dtype(tag),
                                  count=total).copy()
            if tag == dense.TAG_BOOL:
                data = data.astype(_np.bool_)
            return Array(extents, data.reshape(tuple(extents))), zero_copy
    values: list = []
    for outcome, (cell_lo, cell_hi) in zip(outcomes, cell_ranges):
        if outcome[0] in ("shm", "vec"):
            view = _np.frombuffer(out_seg.buf, dtype=_slab_dtype(outcome[1]),
                                  count=total)
            try:
                piece = view[cell_lo:cell_hi]
                if outcome[1] == dense.TAG_BOOL:
                    piece = piece.astype(_np.bool_)
                values.extend(piece.tolist())
            finally:
                del view
        else:
            values.extend(outcome[1])
    return Array(extents, values), zero_copy


def _fold_sum(outcomes, out_seg, shards, count) -> Optional[tuple]:
    """Fold shard Σ outcomes in canonical order; ``(total,)`` or ``None``.

    All-integer slabs sum vectorized when the ``INT_GUARD`` bound
    proves int64 accumulation cannot overflow (integer addition is
    associative, so the result is the serial fold's exactly); floats
    always fold boxed left-to-right in shard order, preserving the
    serial fold's non-associative rounding bit-for-bit.
    """
    vsum_count = sum(1 for outcome in outcomes if outcome[0] == "vsum")
    if vsum_count:
        if vsum_count != len(outcomes):
            # decline decisions are shard-global (see execute_elements);
            # a mix means a protocol anomaly — rerun serially
            return None
        total = 0
        for outcome in outcomes:  # exact ints, associative, guarded
            total += outcome[1]
        return (total,)
    shm_count = sum(1 for outcome in outcomes if outcome[0] == "shm")
    if shm_count and out_seg is None:
        return None
    if shm_count == len(outcomes) \
            and all(outcome[1] == dense.TAG_INT for outcome in outcomes):
        maxabs = max((max(abs(outcome[2]), abs(outcome[3]))
                      for outcome in outcomes), default=0)
        if count * maxabs <= dense.INT_GUARD:
            view = _np.frombuffer(out_seg.buf, dtype=_np.int64, count=count)
            try:
                total = int(view.sum())
            finally:
                del view
            return (total,)
    total: Any = 0
    for outcome, (lo, hi) in zip(outcomes, shards):
        if outcome[0] == "shm":
            view = _np.frombuffer(out_seg.buf, dtype=_slab_dtype(outcome[1]),
                                  count=count)
            try:
                piece = view[lo:hi]
                if outcome[1] == dense.TAG_BOOL:
                    piece = piece.astype(_np.bool_)
                boxed = piece.tolist()
            finally:
                del view
            for value in boxed:
                total = total + value
        else:
            for value in outcome[1]:
                total = total + value
    return (total,)


def _tabulate_process(expr: ast.Tabulate, bindings, extents, shards,
                      probe, config: DispatchConfig,
                      kernel: bool = False,
                      vec_only: bool = False) -> Optional[Array]:
    """Process-backend tabulation over the shared-memory transport.

    ``shards`` are flat row-major cell ranges (see :func:`split` over
    the domain's total).  With ``kernel=True`` the parent recognized
    the body as a numpy kernel and each worker attempts
    :func:`repro.core.kernels.execute_range` over its range before the
    scalar fallback; shard-global decline proofs guarantee the
    outcomes are all-vectorized or all-scalar, and a mix is treated as
    a protocol anomaly (serial rerun).  ``vec_only=True`` (the probed
    compiled engine) additionally declines the all-scalar case, whose
    worker counters would be the interpreter's, not the compiler's.
    """
    if bindings is None or _contains_prim(expr.body):
        return None
    probed = _probed_for_process(probe)
    if probed is None:
        return None
    total = 1
    for extent in extents:
        total *= extent
    segments: List[Any] = []
    try:
        plain, shm_binds = _export_bindings(bindings, segments)
        _prime_dense(value for _, value in plain)
        out_seg = _shm_create(total * 8, segments)
        if kernel and out_seg is None:
            # no slab to write into (shm transport off/unavailable):
            # decline so the caller's *serial* kernel runs — scalar
            # shards here would report scalar counters for a construct
            # the serial run vectorizes
            return None
        payloads = [
            _payload("tabulate", expr, plain, shm_binds, config, probed,
                     extents=list(extents), lo=lo, hi=hi,
                     out=((out_seg.name, lo, hi)
                          if out_seg is not None else None),
                     kernel=kernel and out_seg is not None)
            for lo, hi in shards
        ]
        outcomes = _run_process_shards(payloads, config)
        if outcomes is None:
            return None
        vec_count = sum(1 for outcome in outcomes if outcome[0] == "vec")
        if vec_count and vec_count != len(outcomes):
            return None  # decline decisions are shard-global; see above
        if vec_only and vec_count != len(outcomes):
            return None
        stitched = _stitch_tabulate(outcomes, out_seg, list(shards),
                                    extents, total)
        if stitched is None:
            return None
        result, zero_copy = stitched
        _merge_probes(probe,
                      [outcome[-1] for outcome in outcomes] if probed else [],
                      len(shards), total)
        if probe is not None:
            if vec_count:
                # mirror the serial kernel's report, so serial-kernel
                # and sharded-kernel runs agree on every shared counter
                probe.on_cells_vectorized(total)
                probe.on_shards_vectorized(vec_count, total)
            else:
                probe.on_cells(total)
            if segments:
                probe.on_shm(len(segments),
                             sum(seg.size for seg in segments), zero_copy)
        return result
    finally:
        # every exit path — success, shard ⊥, broken pool — unlinks
        for seg in segments:
            _shm_release(seg)


def _sum_process(expr: ast.Sum, bindings, elements, shards, probe,
                 config: DispatchConfig) -> Optional[Tuple[Any]]:
    """Process-backend Σ over the shared-memory transport.

    When the parent is unprobed, the element slab is an int block, and
    the body is kernel-shaped, workers attempt the vectorized partial
    fold (``"vsum"`` outcomes — see
    :func:`repro.core.kernels.execute_elements`) before the boxed
    scalar path.  Probed runs never ship the kernel flag: serial Σ is
    always interpreted per element, so a vectorized shard would report
    different counters than the serial run it must agree with.
    """
    from repro.core import kernels

    if bindings is None or _contains_prim(expr.body):
        return None
    probed = _probed_for_process(probe)
    if probed is None:
        return None
    count = len(elements)
    segments: List[Any] = []
    try:
        plain, shm_binds = _export_bindings(bindings, segments)
        _prime_dense(value for _, value in plain)
        elements_ref = None
        if _shm_transport_on():
            block = dense.probe_block(elements, (count,))
            if block is not None:
                seg = _shm_create(block.data.nbytes, segments)
                if seg is not None:
                    _copy_into(seg, block.data)
                    elements_ref = (seg.name, block.tag, count,
                                    block.lo, block.hi)
        kernel_sum = (not probed and probe is None
                      and elements_ref is not None
                      and elements_ref[1] == dense.TAG_INT
                      and kernels.available()
                      and kernels.recognize_sum(expr) is not None)
        out_seg = _shm_create(count * 8, segments)
        payloads = []
        for lo, hi in shards:
            out = (out_seg.name, lo, hi) if out_seg is not None else None
            if elements_ref is not None:
                payloads.append(
                    _payload("sum", expr, plain, shm_binds, config, probed,
                             lo=lo, hi=hi, elements_shm=elements_ref,
                             out=out, kernel=kernel_sum))
            else:
                payloads.append(
                    _payload("sum", expr, plain, shm_binds, config, probed,
                             lo=0, hi=hi - lo,
                             elements=list(elements[lo:hi]), out=out))
        if elements_ref is None:
            _prime_dense(elements)
        outcomes = _run_process_shards(payloads, config)
        if outcomes is None:
            return None
        folded = _fold_sum(outcomes, out_seg, shards, count)
        if folded is None:
            return None
        zero_copy = sum(1 for outcome in outcomes if outcome[0] == "shm")
        _merge_probes(probe,
                      [outcome[-1] for outcome in outcomes] if probed else [],
                      len(shards), count)
        if probe is not None and segments:
            probe.on_shm(len(segments),
                         sum(seg.size for seg in segments), zero_copy)
        return folded
    finally:
        for seg in segments:
            _shm_release(seg)


__all__ = [
    "ENABLED", "SHM_ENABLED", "SHM_MIN_BYTES", "SHUTDOWN_GRACE",
    "available", "split", "in_worker", "shutdown_pools",
    "shm_live_segments", "shm_unlink_all",
    "tabulate_interp", "sum_interp", "tabulate_compiled", "sum_compiled",
    "tabulate_kernel_interp", "tabulate_kernel_compiled",
]
