"""Sharded parallel execution of tabulation and Σ.

The paper's array constructs are *functions over rectangular index
domains*: a ``Tabulate`` applies its defining function independently at
every index, and ``Σ`` folds a body over ``canonical_elements`` of its
source.  Both are embarrassingly parallel — this module partitions a
tabulation domain by outermost-index prefix (contiguous runs of the
first axis, which ``iter_indices``'s row-major order makes contiguous
runs of cells) and a Σ source into contiguous slices of its canonical
element list, executes the shards on a worker pool, and merges results
back **in index order** so the output is bit-identical to the serial
loop.

Discipline (same proof-or-fallback contract as :mod:`repro.core.kernels`):

* Every entry point returns the finished value or ``None``; ``None``
  means "run the scalar loop" and is the answer whenever parallel
  execution cannot *prove* it reproduces serial results — pool
  unavailable, probe unforkable, payload unpicklable, or any shard
  raising anything at all.
* **Strict ⊥ and error identity**: when any shard fails (⊥ or
  otherwise) the remaining shards are cancelled best-effort, *all*
  parallel work — including worker probe counters — is discarded, and
  the caller's serial loop reruns the whole construct.  The serial
  rerun raises exactly the error a serial evaluation always raised
  (same reason, same probe counts), so failure semantics cannot drift.
* **Float-exact Σ**: workers return their slice's body *values*, never
  partial sums; the parent folds every value left-to-right in canonical
  order.  Float addition is non-associative, so merging partial sums
  would change low bits — folding serially over parallel-computed
  values cannot.
* **Probe exactness**: counters are single-writer (see
  :mod:`repro.obs.metrics`), so each worker reports into a private
  probe from ``probe.fork()`` and the parent merges the finished
  workers back in shard order.  A probe that cannot fork opts out of
  parallelism entirely.

Backends: ``"thread"`` shares the interpreter (no pickling, no copies;
the GIL serializes pure-Python bodies, so it helps only when bodies
release the GIL, e.g. numpy-heavy primitives) and ``"process"`` forks
true CPU-parallel workers that re-interpret the shard body against
pickled bindings (a worker that cannot reconstruct the body — native
primitives in scope, unpicklable values — fails its shard and the
whole construct falls back to serial).

``REPRO_NO_PARALLEL=1`` disables every dispatch unconditionally.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import ast
from repro.core.fastpath import DispatchConfig
from repro.objects import dense
from repro.objects.array import Array, iter_indices

#: kill switch — mirrors ``kernels.ENABLED`` / ``REPRO_NO_VECTORIZE``
ENABLED = os.environ.get("REPRO_NO_PARALLEL", "") != "1"

def _worker_config(config: DispatchConfig) -> DispatchConfig:
    """The parent's tuning with sharding turned off.

    Workers must never re-shard (a saturated pool would deadlock), but
    every other dispatch decision — the vectorization floor, the
    set-engine switch — must match the parent's, or a sharded run's
    nested tabulations and group-bys would take different paths (and
    report different counters) than the serial run they must agree
    with.
    """
    return DispatchConfig(min_cells=config.min_cells, workers=0,
                          backend=config.backend, setops=config.setops)

#: set while the current *thread* is executing a shard, so nested
#: tabulations inside a shard body take the serial path even on the
#: shared-evaluator thread backend
_WORKER = threading.local()


class _Cancelled(Exception):
    """A shard aborted because a sibling already failed."""


def in_worker() -> bool:
    """Is the current thread executing inside a shard?"""
    return getattr(_WORKER, "active", False)


def available(config: Optional[DispatchConfig]) -> bool:
    """Can a parallel dispatch be attempted under ``config`` at all?

    The minimum-cells floor is the *caller's* gate (shared with the
    vectorized path); this checks everything else.
    """
    return (
        ENABLED
        and config is not None
        and config.workers > 1
        and not in_worker()
    )


def split(extent: int, shards: int) -> List[Tuple[int, int]]:
    """Partition ``range(extent)`` into ≤ ``shards`` contiguous, balanced,
    non-empty ``(lo, hi)`` runs, in index order."""
    shards = min(shards, extent)
    if shards <= 0:
        return []
    base, extra = divmod(extent, shards)
    out = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


# -- worker pools -----------------------------------------------------------

_POOLS: Dict[Tuple[str, int], Any] = {}
_POOL_LOCK = threading.Lock()


def _get_pool(backend: str, workers: int):
    """The cached pool for ``(backend, workers)``, or ``None``.

    Pools are lazily created and reused across dispatches so process
    forking is paid once per configuration, not once per tabulation.
    """
    key = (backend, workers)
    with _POOL_LOCK:
        pool = _POOLS.get(key)
        if pool is not None:
            return pool
        if backend == "thread":
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        elif backend == "process":
            try:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                context = multiprocessing.get_context("fork")
                pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
            except (ImportError, ValueError, OSError):
                return None  # no fork on this platform -> serial fallback
        else:
            return None
        _POOLS[key] = pool
        return pool


def _evict_pool(backend: str, workers: int) -> None:
    """Drop (and shut down) a pool that broke mid-dispatch."""
    with _POOL_LOCK:
        pool = _POOLS.pop((backend, workers), None)
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def shutdown_pools() -> None:
    """Shut down every cached pool (atexit, and test isolation)."""
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass


atexit.register(shutdown_pools)


def _collect(futures: Sequence[Future], cancel: threading.Event,
             backend: str, workers: int) -> Optional[List[Any]]:
    """Await every shard; any failure cancels the rest and yields ``None``.

    Shards that already run are drained (their inputs are immutable, so
    letting them finish is safe); a broken process pool is evicted so
    the next dispatch gets a fresh one instead of failing forever.
    """
    results: List[Any] = []
    failed = False
    for future in futures:
        try:
            results.append(future.result())
        except BaseException:
            failed = True
            cancel.set()
            for other in futures:
                other.cancel()
            results.append(None)
    if failed:
        if backend == "process":
            pool = _POOLS.get((backend, workers))
            if pool is not None and getattr(pool, "_broken", False):
                _evict_pool(backend, workers)
        return None
    return results


def _fork_probes(probe: Any, count: int) -> Optional[List[Any]]:
    """``count`` private worker probes, or ``None`` if ``probe`` cannot
    be forked/merged (which declines the whole parallel dispatch)."""
    if probe is None:
        return []
    fork = getattr(probe, "fork", None)
    if fork is None or not hasattr(probe, "merge"):
        return None
    probes = []
    for _ in range(count):
        forked = fork()
        if forked is None:
            return None
        probes.append(forked)
    return probes


def _merge_probes(probe: Any, worker_probes: List[Any],
                  shards: int, cells: int) -> None:
    """Fold finished worker probes into the parent, in shard order, and
    record the dispatch itself."""
    if probe is None:
        return
    for worker_probe in worker_probes:
        probe.merge(worker_probe)
    probe.on_parallel(shards, cells)


# -- interpreter (repro.core.eval) entry points -----------------------------


def _interp_rows(evaluator, expr: ast.Tabulate, env, extents: Sequence[int],
                 lo: int, hi: int, cancel: Optional[threading.Event]) -> list:
    """Evaluate rows ``lo..hi`` of the first axis, in row-major order —
    exactly the cells the serial loop would produce at those indices."""
    from repro.core.eval import Env

    values: list = []
    eval_ = evaluator._eval
    body = expr.body
    variables = expr.vars
    if len(extents) == 1:
        for i in range(lo, hi):
            if cancel is not None and cancel.is_set():
                raise _Cancelled()
            values.append(eval_(body, Env.extend(env, variables[0], i)))
        return values
    inner_extents = extents[1:]
    inner_vars = variables[1:]
    for i in range(lo, hi):
        if cancel is not None and cancel.is_set():
            raise _Cancelled()
        outer = Env.extend(env, variables[0], i)
        for index in iter_indices(inner_extents):
            inner = outer
            for var, position in zip(inner_vars, index):
                inner = Env.extend(inner, var, position)
            values.append(eval_(body, inner))
    return values


def _interp_sum_slice(evaluator, expr: ast.Sum, env, elements: Sequence[Any],
                      lo: int, hi: int,
                      cancel: Optional[threading.Event]) -> list:
    """Body values for elements ``lo..hi`` of the canonical order."""
    from repro.core.eval import Env

    values: list = []
    eval_ = evaluator._eval
    body = expr.body
    var = expr.var
    for k in range(lo, hi):
        if cancel is not None and cancel.is_set():
            raise _Cancelled()
        values.append(eval_(body, Env.extend(env, var, elements[k])))
    return values


def _guarded(fn):
    """Run ``fn`` with the worker flag set on this thread."""
    _WORKER.active = True
    try:
        return fn()
    finally:
        _WORKER.active = False


def _env_bindings(env, needed) -> Optional[List[Tuple[str, Any]]]:
    """The innermost binding of each ``needed`` name from an
    :class:`~repro.core.eval.Env` chain; ``None`` if any is unbound
    (the serial loop raises the canonical error for that)."""
    bindings: List[Tuple[str, Any]] = []
    seen = set()
    node = env
    while node is not None and len(seen) < len(needed):
        if node.name in needed and node.name not in seen:
            seen.add(node.name)
            bindings.append((node.name, node.value))
        node = node.parent
    if len(seen) < len(needed):
        return None
    return bindings


def _dispatch_threads(evaluator, probe, config, make_task, shards):
    """Common thread-backend driver: fork probes, build one worker
    evaluator per shard (or share the parent when unprobed), run, and
    return ``(parts, worker_probes)`` or ``None``."""
    from repro.core.eval import Evaluator

    worker_probes = _fork_probes(probe, len(shards))
    if worker_probes is None:
        return None
    pool = _get_pool("thread", config.workers)
    if pool is None:
        return None
    cancel = threading.Event()
    tasks = []
    for position, (lo, hi) in enumerate(shards):
        if probe is None:
            worker = evaluator  # read-only sharing; guard blocks re-entry
        else:
            worker = Evaluator(evaluator.prims,
                               probe=worker_probes[position],
                               parallel=_worker_config(config))
        tasks.append(make_task(worker, lo, hi, cancel))
    futures = [pool.submit(_guarded, task) for task in tasks]
    parts = _collect(futures, cancel, "thread", config.workers)
    if parts is None:
        return None
    return parts, worker_probes


def tabulate_interp(evaluator, expr: ast.Tabulate, env,
                    extents: Sequence[int], total: int) -> Optional[Array]:
    """Parallel interpreter tabulation, or ``None`` for the scalar loop."""
    config = evaluator.parallel
    shards = split(extents[0], config.workers)
    if len(shards) < 2:
        return None
    probe = evaluator.probe
    if config.backend == "process":
        return _tabulate_process(
            expr, _env_bindings_for(expr, env), extents, shards, probe,
            config)

    def make_task(worker, lo, hi, cancel):
        return lambda: _interp_rows(worker, expr, env, extents, lo, hi,
                                    cancel)

    outcome = _dispatch_threads(evaluator, probe, config, make_task, shards)
    if outcome is None:
        return None
    parts, worker_probes = outcome
    values = [value for part in parts for value in part]
    _merge_probes(probe, worker_probes, len(shards), total)
    if probe is not None:
        probe.on_cells(total)
    return Array(extents, values)


def sum_interp(evaluator, expr: ast.Sum, env,
               elements: Sequence[Any]) -> Optional[Tuple[Any]]:
    """Parallel interpreter Σ: ``(total,)`` on success, else ``None``.

    The 1-tuple distinguishes a computed total (which may itself be 0 or
    any falsy value) from the fallback signal.
    """
    config = evaluator.parallel
    shards = split(len(elements), config.workers)
    if len(shards) < 2:
        return None
    probe = evaluator.probe
    if config.backend == "process":
        return _sum_process(expr, _env_bindings_for(expr, env), elements,
                            shards, probe, config)

    def make_task(worker, lo, hi, cancel):
        return lambda: _interp_sum_slice(worker, expr, env, elements,
                                         lo, hi, cancel)

    outcome = _dispatch_threads(evaluator, probe, config, make_task, shards)
    if outcome is None:
        return None
    parts, worker_probes = outcome
    _merge_probes(probe, worker_probes, len(shards), len(elements))
    total: Any = 0
    for part in parts:
        for value in part:  # canonical order: float-exact vs serial
            total = total + value
    return (total,)


def _env_bindings_for(expr, env):
    """Bindings a process worker needs to rebuild ``expr``'s body env."""
    bound = set(expr.vars) if isinstance(expr, ast.Tabulate) else {expr.var}
    needed = ast.free_vars(expr.body) - bound
    return _env_bindings(env, needed)


# -- compiled engine (repro.core.compile) entry points ----------------------


def tabulate_compiled(compiler, expr: ast.Tabulate, scope: Tuple[str, ...],
                      body_code, env: List[Any], extents: Sequence[int],
                      total: int) -> Optional[Array]:
    """Parallel compiled tabulation, or ``None`` for the scalar loop."""
    config = compiler.parallel
    shards = split(extents[0], config.workers)
    if len(shards) < 2:
        return None
    probe = compiler.probe
    if config.backend == "process":
        if probe is not None:
            # process workers re-interpret the body; interpreter-side
            # counters are only provably identical to the *interpreter's*
            # serial counters, so the compiled engine declines
            return None
        bindings = _scope_bindings(expr, scope, env)
        return _tabulate_process(expr, bindings, extents, shards, None,
                                 config)
    worker_probes = _fork_probes(probe, len(shards))
    if worker_probes is None:
        return None
    pool = _get_pool("thread", config.workers)
    if pool is None:
        return None
    cancel = threading.Event()
    rank = expr.rank
    inner_extents = list(extents[1:])

    def make_task(position: int, lo: int, hi: int):
        def task():
            if probe is None:
                body = body_code  # pure closures: safe to share
            else:
                from repro.core.compile import Compiler

                worker = Compiler(compiler.prims,
                                  probe=worker_probes[position],
                                  parallel=_worker_config(config))
                body = worker.compile(expr.body, scope + expr.vars)
            values: list = []
            if rank == 1:
                for i in range(lo, hi):
                    if cancel.is_set():
                        raise _Cancelled()
                    values.append(body(env + [i]))
            else:
                for i in range(lo, hi):
                    if cancel.is_set():
                        raise _Cancelled()
                    for index in iter_indices(inner_extents):
                        values.append(body(env + [i, *index]))
            return values

        return task

    futures = [
        pool.submit(_guarded, make_task(position, lo, hi))
        for position, (lo, hi) in enumerate(shards)
    ]
    parts = _collect(futures, cancel, "thread", config.workers)
    if parts is None:
        return None
    values = [value for part in parts for value in part]
    _merge_probes(probe, worker_probes, len(shards), total)
    if probe is not None:
        probe.on_cells(total)
    return Array(extents, values)


def sum_compiled(compiler, expr: ast.Sum, scope: Tuple[str, ...],
                 body_code, env: List[Any],
                 elements: Sequence[Any]) -> Optional[Tuple[Any]]:
    """Parallel compiled Σ: ``(total,)`` on success, else ``None``."""
    config = compiler.parallel
    shards = split(len(elements), config.workers)
    if len(shards) < 2:
        return None
    probe = compiler.probe
    if config.backend == "process":
        if probe is not None:
            return None  # see tabulate_compiled
        bindings = _scope_bindings(expr, scope, env)
        return _sum_process(expr, bindings, elements, shards, None,
                            config)
    worker_probes = _fork_probes(probe, len(shards))
    if worker_probes is None:
        return None
    pool = _get_pool("thread", config.workers)
    if pool is None:
        return None
    cancel = threading.Event()

    def make_task(position: int, lo: int, hi: int):
        def task():
            if probe is None:
                body = body_code
            else:
                from repro.core.compile import Compiler

                worker = Compiler(compiler.prims,
                                  probe=worker_probes[position],
                                  parallel=_worker_config(config))
                body = worker.compile(expr.body, scope + (expr.var,))
            values: list = []
            for k in range(lo, hi):
                if cancel.is_set():
                    raise _Cancelled()
                values.append(body(env + [elements[k]]))
            return values

        return task

    futures = [
        pool.submit(_guarded, make_task(position, lo, hi))
        for position, (lo, hi) in enumerate(shards)
    ]
    parts = _collect(futures, cancel, "thread", config.workers)
    if parts is None:
        return None
    _merge_probes(probe, worker_probes, len(shards), len(elements))
    total: Any = 0
    for part in parts:
        for value in part:
            total = total + value
    return (total,)


def _scope_bindings(expr, scope: Tuple[str, ...],
                    env: List[Any]) -> Optional[List[Tuple[str, Any]]]:
    """Free-variable bindings of ``expr.body`` from a compiled env list
    (innermost occurrence of a shadowed name wins)."""
    bound = set(expr.vars) if isinstance(expr, ast.Tabulate) else {expr.var}
    needed = ast.free_vars(expr.body) - bound
    latest: Dict[str, Any] = {}
    for name, value in zip(scope, env):
        if name in needed:
            latest[name] = value
    if len(latest) < len(needed):
        return None
    return list(latest.items())


# -- the process backend ----------------------------------------------------
#
# Workers are forked interpreters: the shard body is shipped as the AST
# plus the (pickled) values of its free variables, and re-evaluated by a
# fresh serial Evaluator in the child.  Anything that cannot make the
# trip — native primitives in the body, unpicklable environment values —
# fails the shard, which falls the whole construct back to serial.
# Array values are probed dense before pickling: a block-backed Array's
# ``__reduce__`` ships its raw buffer + dtype tag (one memcpy per shard)
# instead of one object pickle per element.


def _prime_dense(values) -> None:
    """Probe Array values for dense blocks before they hit pickle.

    Idempotent (the probe caches on the instance) and purely an
    encoding optimization: workers rebuild identical values either way.
    Skipped when the store is off so that lane keeps the boxed format.
    """
    if not dense.store_enabled():
        return
    for value in values:
        if isinstance(value, Array):
            value.dense_block()


def _contains_prim(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Prim):
        return True
    return any(_contains_prim(child) for child in expr.children())


def _process_worker(payload_bytes: bytes):
    """Runs in the child: evaluate one shard, never raise through pickle.

    Returns ``("ok", values, metrics)`` or ``("err",)`` — errors are
    reported as data so exotic exception types never have to survive a
    pickle round-trip; the parent's serial rerun reproduces them.
    """
    from repro.core.eval import Env, Evaluator

    try:
        (kind, expr, bindings, extents, lo, hi, elements, probed,
         min_cells, setops_on) = pickle.loads(payload_bytes)
        env = None
        for name, value in bindings:
            env = Env.extend(env, name, value)
        probe = None
        if probed:
            from repro.obs.metrics import EvalMetrics

            probe = EvalMetrics()
        worker_cfg = DispatchConfig(min_cells=min_cells, workers=0,
                                    setops=setops_on)
        worker = Evaluator({}, probe=probe, parallel=worker_cfg)
        if kind == "tabulate":
            values = _interp_rows(worker, expr, env, extents, lo, hi, None)
        else:
            values = _interp_sum_slice(worker, expr, env, elements,
                                       lo, hi, None)
        return ("ok", values, probe)
    except BaseException:
        return ("err",)


def _run_process_shards(payloads: List[tuple],
                        config: DispatchConfig) -> Optional[List[tuple]]:
    """Pickle + dispatch shard payloads; ``None`` on any failure."""
    blobs = []
    try:
        for payload in payloads:
            blobs.append(pickle.dumps(payload))
    except Exception:
        return None
    pool = _get_pool("process", config.workers)
    if pool is None:
        return None
    cancel = threading.Event()  # unused by children; satisfies _collect
    try:
        futures = [pool.submit(_process_worker, blob) for blob in blobs]
    except Exception:
        _evict_pool("process", config.workers)
        return None
    outcomes = _collect(futures, cancel, "process", config.workers)
    if outcomes is None:
        return None
    if any(outcome[0] != "ok" for outcome in outcomes):
        return None
    return outcomes


def _probed_for_process(probe) -> Optional[bool]:
    """Whether the child should count into an
    :class:`~repro.obs.metrics.EvalMetrics`; ``None`` declines the
    dispatch.  Children always report through ``EvalMetrics`` (arbitrary
    probe objects do not survive pickling), so a parent probe of any
    other class opts out rather than receive foreign counters."""
    if probe is None:
        return False
    from repro.obs.metrics import EvalMetrics

    if type(probe) is not EvalMetrics:
        return None
    return True


def _tabulate_process(expr: ast.Tabulate, bindings, extents, shards,
                      probe, config: DispatchConfig) -> Optional[Array]:
    if bindings is None or _contains_prim(expr.body):
        return None
    probed = _probed_for_process(probe)
    if probed is None:
        return None
    _prime_dense(value for _, value in bindings)
    payloads = [
        ("tabulate", expr, bindings, list(extents), lo, hi, None, probed,
         config.min_cells, config.setops)
        for lo, hi in shards
    ]
    outcomes = _run_process_shards(payloads, config)
    if outcomes is None:
        return None
    total = 1
    for extent in extents:
        total *= extent
    values = [value for outcome in outcomes for value in outcome[1]]
    _merge_probes(probe, [o[2] for o in outcomes] if probed else [],
                  len(shards), total)
    if probe is not None:
        probe.on_cells(total)
    return Array(extents, values)


def _sum_process(expr: ast.Sum, bindings, elements, shards, probe,
                 config: DispatchConfig) -> Optional[Tuple[Any]]:
    if bindings is None or _contains_prim(expr.body):
        return None
    probed = _probed_for_process(probe)
    if probed is None:
        return None
    _prime_dense(value for _, value in bindings)
    _prime_dense(elements)
    payloads = [
        ("sum", expr, bindings, None, 0, hi - lo, list(elements[lo:hi]),
         probed, config.min_cells, config.setops)
        for lo, hi in shards
    ]
    outcomes = _run_process_shards(payloads, config)
    if outcomes is None:
        return None
    _merge_probes(probe, [o[2] for o in outcomes] if probed else [],
                  len(shards), len(elements))
    total: Any = 0
    for outcome in outcomes:
        for value in outcome[1]:
            total = total + value
    return (total,)


__all__ = [
    "ENABLED", "available", "split", "in_worker", "shutdown_pools",
    "tabulate_interp", "sum_interp", "tabulate_compiled", "sum_compiled",
]
