"""Derived operators of Sections 2–3, built from the minimal construct set.

The paper argues only three array constructs are needed (tabulate,
subscript, dim); everything else — ``map``, ``zip``, ``subseq``,
``reverse``, ``evenpos``, ``transpose``, ``proj_col``, matrix
``multiply``, ``dom``, ``rng``, ``graph``, histograms — is *derived*.
This module writes those derivations exactly as the paper does, as
functions from core expressions to core expressions.

Every binder introduced here is freshened with
:func:`~repro.core.ast.fresh_var`, so builders can safely be applied to
open expressions.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.ast import (
    App,
    Arith,
    Bottom,
    Cmp,
    Dim,
    EmptySet,
    Expr,
    Ext,
    Gen,
    Get,
    If,
    IndexSet,
    Lam,
    NatLit,
    Proj,
    Singleton,
    Subscript,
    Sum,
    Tabulate,
    TupleE,
    Var,
    fresh_var,
)

# ---------------------------------------------------------------------------
# small conveniences
# ---------------------------------------------------------------------------

def let_in(var: str, value: Expr, body: Expr) -> Expr:
    """``let val var = value in body end`` ≡ ``(λ var. body)(value)``."""
    return App(Lam(var, body), value)


def nat_min(a: Expr, b: Expr) -> Expr:
    """``min`` of two naturals as a conditional."""
    return If(Cmp("<=", a, b), a, b)


def array_len(a: Expr) -> Expr:
    """``len`` = ``dim_1`` (the paper's abbreviation)."""
    return Dim(a, 1)


def dim_of(a: Expr, axis: int, rank: int) -> Expr:
    """``dim_{axis,rank}`` = ``π_{axis,rank} ∘ dim_rank`` (1-based axis)."""
    if rank == 1:
        if axis != 1:
            raise ValueError("1-d arrays have a single dimension")
        return Dim(a, 1)
    return Proj(axis, rank, Dim(a, rank))


# ---------------------------------------------------------------------------
# the NRC examples of Section 2
# ---------------------------------------------------------------------------

def filter_set(predicate: Callable[[Expr], Expr], source: Expr) -> Expr:
    """``filter P X = ⋃{ if P(x) then {x} else {} | x ∈ X }``."""
    x = fresh_var("x")
    return Ext(x, If(predicate(Var(x)), Singleton(Var(x)), EmptySet()), source)


def project_set(index: int, arity: int, source: Expr) -> Expr:
    """``Π_{i,k} X = ⋃{ {π_{i,k}(x)} | x ∈ X }``."""
    x = fresh_var("x")
    return Ext(x, Singleton(Proj(index, arity, Var(x))), source)


def cartesian(left: Expr, right: Expr) -> Expr:
    """``X × Y = ⋃{ ⋃{ {(x,y)} | x ∈ X } | y ∈ Y }``."""
    x = fresh_var("x")
    y = fresh_var("y")
    return Ext(y, Ext(x, Singleton(TupleE((Var(x), Var(y)))), left), right)


def nest(source: Expr) -> Expr:
    """``nest : {s×t} -> {s×{t}}`` — group second components by first.

    The Section 2 definition:
    ``⋃{ {(π1 x, Π2(filter(λy.π1 y = π1 x)(X)))} | x ∈ X }``.
    """
    x = fresh_var("x")
    grouped = project_set(
        2, 2,
        filter_set(
            lambda y: Cmp("=", Proj(1, 2, y), Proj(1, 2, Var(x))), source
        ),
    )
    return Ext(x, Singleton(TupleE((Proj(1, 2, Var(x)), grouped))), source)


def set_member(item: Expr, source: Expr) -> Expr:
    """``item ∈ source`` as an NRC expression (via Σ of indicators)."""
    x = fresh_var("x")
    return Cmp(
        ">", Sum(x, If(Cmp("=", Var(x), item), NatLit(1), NatLit(0)), source),
        NatLit(0),
    )


# ---------------------------------------------------------------------------
# aggregates via Σ (Section 2)
# ---------------------------------------------------------------------------

def count(source: Expr) -> Expr:
    """``count(X) = Σ{ 1 | x ∈ X }``."""
    x = fresh_var("x")
    return Sum(x, NatLit(1), source)


def forall(var_fn: Callable[[Expr], Expr], source: Expr) -> Expr:
    """``∀x ∈ X (P) ≡ Σ{ if P then 0 else 1 | x ∈ X } = 0``."""
    x = fresh_var("x")
    return Cmp(
        "=",
        Sum(x, If(var_fn(Var(x)), NatLit(0), NatLit(1)), source),
        NatLit(0),
    )


def min_set(source: Expr) -> Expr:
    """``min(X) = get(filter(λy. ∀x∈X (y ≤ x))(X))``."""
    y_pred = lambda y: forall(lambda x: Cmp("<=", y, x), source)  # noqa: E731
    return Get(filter_set(y_pred, source))


def max_set(source: Expr) -> Expr:
    """``max(X)``, dually."""
    y_pred = lambda y: forall(lambda x: Cmp(">=", y, x), source)  # noqa: E731
    return Get(filter_set(y_pred, source))


# ---------------------------------------------------------------------------
# the 1-d array examples of Section 2
# ---------------------------------------------------------------------------

def map_array(fn: Callable[[Expr], Expr], array: Expr) -> Expr:
    """``map f A = [[ f(A[i]) | i < len(A) ]]``."""
    i = fresh_var("i")
    return Tabulate((i,), (array_len(array),),
                    fn(Subscript(array, (Var(i),))))


def zip2(a: Expr, b: Expr) -> Expr:
    """``zip(A,B) = [[ (A[i],B[i]) | i < min(len A, len B) ]]``."""
    i = fresh_var("i")
    return Tabulate(
        (i,), (nat_min(array_len(a), array_len(b)),),
        TupleE((Subscript(a, (Var(i),)), Subscript(b, (Var(i),)))),
    )


def zip3(a: Expr, b: Expr, c: Expr) -> Expr:
    """Three-way zip (the ``zip_3`` of the Section 1 motivating query)."""
    i = fresh_var("i")
    bound = nat_min(array_len(a), nat_min(array_len(b), array_len(c)))
    return Tabulate(
        (i,), (bound,),
        TupleE((
            Subscript(a, (Var(i),)),
            Subscript(b, (Var(i),)),
            Subscript(c, (Var(i),)),
        )),
    )


def subseq(array: Expr, start: Expr, stop: Expr) -> Expr:
    """``subseq(A,i,j) = [[ A[i+k] | k < (j+1) ∸ i ]]`` (inclusive bounds)."""
    k = fresh_var("k")
    length = Arith("-", Arith("+", stop, NatLit(1)), start)
    return Tabulate((k,), (length,),
                    Subscript(array, (Arith("+", start, Var(k)),)))


def reverse(array: Expr) -> Expr:
    """``reverse A = [[ A[len(A) ∸ i ∸ 1] | i < len(A) ]]``."""
    i = fresh_var("i")
    index = Arith("-", Arith("-", array_len(array), Var(i)), NatLit(1))
    return Tabulate((i,), (array_len(array),), Subscript(array, (index,)))


def evenpos(array: Expr) -> Expr:
    """``evenpos A = [[ A[i*2] | i < len(A)/2 ]]`` — keep even positions.

    This is the grid-coarsening step of the Section 1 query (half-hourly →
    hourly readings).
    """
    i = fresh_var("i")
    return Tabulate(
        (i,), (Arith("/", array_len(array), NatLit(2)),),
        Subscript(array, (Arith("*", Var(i), NatLit(2)),)),
    )


# ---------------------------------------------------------------------------
# the matrix examples of Section 2
# ---------------------------------------------------------------------------

def transpose(matrix: Expr) -> Expr:
    """``transpose M = [[ M[i,j] | j < dim_{2,2}M, i < dim_{1,2}M ]]``."""
    i = fresh_var("i")
    j = fresh_var("j")
    return Tabulate(
        (j, i),
        (dim_of(matrix, 2, 2), dim_of(matrix, 1, 2)),
        Subscript(matrix, (Var(i), Var(j))),
    )


def proj_col(matrix: Expr, column: Expr) -> Expr:
    """``proj_col(M,j) = [[ M[i,j] | i < dim_{1,2}M ]]``."""
    i = fresh_var("i")
    return Tabulate((i,), (dim_of(matrix, 1, 2),),
                    Subscript(matrix, (Var(i), column)))


def proj_row(matrix: Expr, row: Expr) -> Expr:
    """The row dual of :func:`proj_col`."""
    j = fresh_var("j")
    return Tabulate((j,), (dim_of(matrix, 2, 2),),
                    Subscript(matrix, (row, Var(j))))


def multiply(m: Expr, n: Expr) -> Expr:
    """Matrix product with the paper's conformance check (⊥ on mismatch)."""
    i = fresh_var("i")
    j = fresh_var("j")
    k = fresh_var("k")
    inner = Sum(
        k,
        Arith(
            "*",
            Subscript(m, (Var(i), Var(k))),
            Subscript(n, (Var(k), Var(j))),
        ),
        Gen(dim_of(m, 2, 2)),
    )
    product = Tabulate(
        (i, j), (dim_of(m, 1, 2), dim_of(n, 2, 2)), inner
    )
    return If(Cmp("<>", dim_of(m, 2, 2), dim_of(n, 1, 2)), Bottom(), product)


# ---------------------------------------------------------------------------
# domains, ranges, graphs (Section 2)
# ---------------------------------------------------------------------------

def dom(array: Expr, rank: int = 1) -> Expr:
    """``dom(e)``: the index set of an array.

    ``gen(len e)`` for rank 1; the k-fold product of ``gen``s otherwise.
    """
    if rank == 1:
        return Gen(array_len(array))
    result = Gen(dim_of(array, 1, rank))
    for axis in range(2, rank + 1):
        result = cartesian_flatten(result, Gen(dim_of(array, axis, rank)), axis)
    return result


def cartesian_flatten(left: Expr, right: Expr, arity: int) -> Expr:
    """Product of an (arity-1)-tuple set with a scalar set, flattening.

    Builds ``{(x_1,...,x_{arity-1}, y)}`` rather than nested pairs, so that
    k-dimensional index tuples match the subscript convention.
    """
    x = fresh_var("x")
    y = fresh_var("y")
    if arity == 2:
        tuple_expr: Expr = TupleE((Var(x), Var(y)))
    else:
        components = tuple(
            Proj(position, arity - 1, Var(x)) for position in range(1, arity)
        ) + (Var(y),)
        tuple_expr = TupleE(components)
    return Ext(y, Ext(x, Singleton(tuple_expr), left), right)


def rng(array: Expr, rank: int = 1) -> Expr:
    """``rng(e) = ⋃{ {e[i]} | i ∈ dom(e) }``."""
    i = fresh_var("i")
    if rank == 1:
        body = Singleton(Subscript(array, (Var(i),)))
    else:
        body = Singleton(
            Subscript(
                array,
                tuple(Proj(p, rank, Var(i)) for p in range(1, rank + 1)),
            )
        )
    return Ext(i, body, dom(array, rank))


def graph(array: Expr, rank: int = 1) -> Expr:
    """``graph_k(e) = ⋃{ {(i, e[i])} | i ∈ dom_k(e) }``."""
    i = fresh_var("i")
    if rank == 1:
        pair = TupleE((Var(i), Subscript(array, (Var(i),))))
    else:
        pair = TupleE((
            Var(i),
            Subscript(
                array,
                tuple(Proj(p, rank, Var(i)) for p in range(1, rank + 1)),
            ),
        ))
    return Ext(i, Singleton(pair), dom(array, rank))


# ---------------------------------------------------------------------------
# the histogram pair of Section 2 (motivates the index construct)
# ---------------------------------------------------------------------------

def hist(array: Expr) -> Expr:
    """The naive histogram — O(n·m).

    ``hist e = [[ Σ{ if e[j]=i then 1 else 0 | j ∈ dom e } | i < max(rng e)+1 ]]``

    (The paper writes the bound as ``max(rng(e))``; we add 1 so the bin for
    the maximum value exists, which is what makes ``hist`` and ``hist'``
    agree — see EXPERIMENTS.md.)
    """
    i = fresh_var("i")
    j = fresh_var("j")
    bin_count = Arith("+", max_set(rng(array)), NatLit(1))
    body = Sum(
        j,
        If(Cmp("=", Subscript(array, (Var(j),)), Var(i)),
           NatLit(1), NatLit(0)),
        dom(array),
    )
    return Tabulate((i,), (bin_count,), body)


def hist_fast(array: Expr) -> Expr:
    """The ``index``-based histogram — O(m + n log n).

    ``hist' e = map(count)(index(⋃{ {(e[j], j)} | j ∈ dom e }))``.

    The indexed array is let-bound so it is computed once; ``map`` uses
    it in both its bound and its body, and inlining it there (as a naive
    β would) re-runs the group-by per bin and forfeits the complexity
    bound the paper claims — which is why the optimizer's β rule carries
    a duplication guard.
    """
    j = fresh_var("j")
    g = fresh_var("g")
    pairs = Ext(
        j,
        Singleton(TupleE((Subscript(array, (Var(j),)), Var(j)))),
        dom(array),
    )
    indexed = IndexSet(pairs, 1)
    return let_in(g, indexed, map_array(count, Var(g)))


# ---------------------------------------------------------------------------
# array monoid (Section 3: literals via empty/singleton/append)
# ---------------------------------------------------------------------------

def array_empty() -> Expr:
    """``[[]] = [[ ⊥ | i < 0 ]]`` — the empty 1-d array."""
    i = fresh_var("i")
    return Tabulate((i,), (NatLit(0),), Bottom())


def array_singleton(item: Expr) -> Expr:
    """``[[e]] = [[ e | i < 1 ]]``."""
    i = fresh_var("i")
    return Tabulate((i,), (NatLit(1),), item)


def array_append(a: Expr, b: Expr) -> Expr:
    """``A @ B``: concatenation by tabulation over ``len A + len B``."""
    i = fresh_var("i")
    split = If(
        Cmp("<", Var(i), array_len(a)),
        Subscript(a, (Var(i),)),
        Subscript(b, (Arith("-", Var(i), array_len(a)),)),
    )
    return Tabulate(
        (i,), (Arith("+", array_len(a), array_len(b)),), split
    )


def array_literal(items: Sequence[Expr]) -> Expr:
    """``[[e1, ..., en]]`` via the monoid — the O(n²) form of Section 3.

    (The efficient alternative is the :class:`~repro.core.ast.MkArray`
    construct; this builder exists to reproduce the paper's observation
    that the monoid encoding tabulates a giant nested conditional.)
    """
    result = array_empty()
    for item in items:
        result = array_append(result, array_singleton(item))
    return result


__all__ = [
    "let_in", "nat_min", "array_len", "dim_of",
    "filter_set", "project_set", "cartesian", "nest", "set_member",
    "count", "forall", "min_set", "max_set",
    "map_array", "zip2", "zip3", "subseq", "reverse", "evenpos",
    "transpose", "proj_col", "proj_row", "multiply",
    "dom", "rng", "graph", "cartesian_flatten",
    "hist", "hist_fast",
    "array_empty", "array_singleton", "array_append", "array_literal",
]
