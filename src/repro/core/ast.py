"""Abstract syntax for the NRCA core calculus (Figure 1).

Every construct of the paper's Figure 1 is a node class here, plus the
Section 6 extension constructs (bags and ranked unions) used by the
expressiveness results.  The surface language (comprehensions, patterns,
blocks — Figure 2) is *desugared into* this AST; the optimizer (Section 5)
rewrites it; the evaluator interprets it.

Design notes
------------

* Nodes are frozen dataclasses: structural equality is exact syntactic
  equality (α-equivalence is :func:`alpha_equal`).
* Binding structure is exposed uniformly through :meth:`Expr.parts`, which
  yields ``(child, bound_names)`` pairs, and ``BINDER_FIELDS``, naming the
  dataclass fields that hold binder names.  All generic operations —
  :func:`free_vars`, :func:`substitute`, :func:`transform_bottom_up`,
  :func:`alpha_equal` — are written once against that interface.
* Substitution is capture-avoiding: binders are freshened on demand via
  :func:`fresh_var`.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Tuple

# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------

#: comparison operators of Figure 1 (available at every object type — the
#: paper notes = and <= lift definably, so we take the full family primitive)
CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")

#: arithmetic operators of Figure 1; ``-`` is *monus* on naturals (the
#: paper writes it ÷̇), ordinary subtraction on reals
ARITH_OPS = ("+", "-", "*", "/", "%")

_fresh_counter = itertools.count(1)


def fresh_var(hint: str = "x") -> str:
    """Mint a variable name that cannot collide with user variables.

    User variables never contain ``%``; every freshened binder does.
    """
    base = hint.split("%")[0] or "x"
    return f"{base}%{next(_fresh_counter)}"


# ---------------------------------------------------------------------------
# node classes
# ---------------------------------------------------------------------------

class Expr:
    """Base class of all core-calculus expressions."""

    #: dataclass fields holding binder names (a str or a tuple of strs)
    BINDER_FIELDS: Tuple[str, ...] = ()

    def parts(self) -> List[Tuple["Expr", Tuple[str, ...]]]:
        """Children with the variables bound around each child."""
        raise NotImplementedError

    def with_parts(self, children: List["Expr"]) -> "Expr":
        """Rebuild this node with replacement children (same order/shape)."""
        raise NotImplementedError

    # convenience
    def children(self) -> List["Expr"]:
        """Child expressions without binding information."""
        return [child for child, _ in self.parts()]


def _no_parts(self: Expr) -> List[Tuple[Expr, Tuple[str, ...]]]:
    return []


def _identity_with_parts(self: Expr, children: List[Expr]) -> Expr:
    assert not children
    return self


@dataclass(frozen=True)
class Var(Expr):
    """A variable occurrence."""

    name: str

    parts = _no_parts
    with_parts = _identity_with_parts


@dataclass(frozen=True)
class Lam(Expr):
    """Lambda abstraction ``λ param. body`` (object function types only)."""

    param: str
    body: Expr

    BINDER_FIELDS = ("param",)

    def parts(self):
        return [(self.body, (self.param,))]

    def with_parts(self, children):
        (body,) = children
        return Lam(self.param, body)


@dataclass(frozen=True)
class App(Expr):
    """Function application ``e1(e2)``."""

    fn: Expr
    arg: Expr

    def parts(self):
        return [(self.fn, ()), (self.arg, ())]

    def with_parts(self, children):
        fn, arg = children
        return App(fn, arg)


@dataclass(frozen=True)
class TupleE(Expr):
    """k-tuple formation ``(e1, ..., ek)``, k >= 2."""

    items: Tuple[Expr, ...]

    def __post_init__(self):
        if len(self.items) < 2:
            raise ValueError("tuples have arity >= 2")

    def parts(self):
        return [(item, ()) for item in self.items]

    def with_parts(self, children):
        return TupleE(tuple(children))


@dataclass(frozen=True)
class Proj(Expr):
    """Projection ``π_{index,arity}(expr)`` (1-based index)."""

    index: int
    arity: int
    expr: Expr

    def __post_init__(self):
        if not (1 <= self.index <= self.arity) or self.arity < 2:
            raise ValueError(f"bad projection π_{self.index},{self.arity}")

    def parts(self):
        return [(self.expr, ())]

    def with_parts(self, children):
        (expr,) = children
        return Proj(self.index, self.arity, expr)


@dataclass(frozen=True)
class EmptySet(Expr):
    """The empty set ``{}``."""

    parts = _no_parts
    with_parts = _identity_with_parts


@dataclass(frozen=True)
class Singleton(Expr):
    """Singleton set ``{e}``."""

    expr: Expr

    def parts(self):
        return [(self.expr, ())]

    def with_parts(self, children):
        (expr,) = children
        return Singleton(expr)


@dataclass(frozen=True)
class Union(Expr):
    """Set union ``e1 ∪ e2``."""

    left: Expr
    right: Expr

    def parts(self):
        return [(self.left, ()), (self.right, ())]

    def with_parts(self, children):
        left, right = children
        return Union(left, right)


@dataclass(frozen=True)
class Ext(Expr):
    """The big-union ``⋃{ body | var ∈ source }`` (monad extension)."""

    var: str
    body: Expr
    source: Expr

    BINDER_FIELDS = ("var",)

    def parts(self):
        return [(self.source, ()), (self.body, (self.var,))]

    def with_parts(self, children):
        source, body = children
        return Ext(self.var, body, source)


@dataclass(frozen=True)
class BoolLit(Expr):
    """``true`` / ``false``."""

    value: bool

    parts = _no_parts
    with_parts = _identity_with_parts


@dataclass(frozen=True)
class If(Expr):
    """Conditional ``if cond then then else orelse``."""

    cond: Expr
    then: Expr
    orelse: Expr

    def parts(self):
        return [(self.cond, ()), (self.then, ()), (self.orelse, ())]

    def with_parts(self, children):
        cond, then, orelse = children
        return If(cond, then, orelse)


@dataclass(frozen=True)
class Cmp(Expr):
    """Comparison ``e1 op e2`` at any object type (canonical order)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in CMP_OPS:
            raise ValueError(f"bad comparison operator {self.op!r}")

    def parts(self):
        return [(self.left, ()), (self.right, ())]

    def with_parts(self, children):
        left, right = children
        return Cmp(self.op, left, right)


@dataclass(frozen=True)
class NatLit(Expr):
    """A natural-number constant."""

    value: int

    def __post_init__(self):
        if self.value < 0:
            raise ValueError("naturals are non-negative")

    parts = _no_parts
    with_parts = _identity_with_parts


@dataclass(frozen=True)
class RealLit(Expr):
    """A real constant (interpreted base type)."""

    value: float

    parts = _no_parts
    with_parts = _identity_with_parts


@dataclass(frozen=True)
class StrLit(Expr):
    """A string constant (interpreted base type)."""

    value: str

    parts = _no_parts
    with_parts = _identity_with_parts


@dataclass(frozen=True)
class Arith(Expr):
    """Arithmetic ``e1 op e2``, overloaded over nat and real.

    On naturals ``-`` is monus and ``/`` integer division, per Figure 1.
    """

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in ARITH_OPS:
            raise ValueError(f"bad arithmetic operator {self.op!r}")

    def parts(self):
        return [(self.left, ()), (self.right, ())]

    def with_parts(self, children):
        left, right = children
        return Arith(self.op, left, right)


@dataclass(frozen=True)
class Gen(Expr):
    """``gen(e) = {0, ..., e-1}`` — initial segments of the naturals."""

    expr: Expr

    def parts(self):
        return [(self.expr, ())]

    def with_parts(self, children):
        (expr,) = children
        return Gen(expr)


@dataclass(frozen=True)
class Sum(Expr):
    """Summation ``Σ{ body | var ∈ source }``."""

    var: str
    body: Expr
    source: Expr

    BINDER_FIELDS = ("var",)

    def parts(self):
        return [(self.source, ()), (self.body, (self.var,))]

    def with_parts(self, children):
        source, body = children
        return Sum(self.var, body, source)


@dataclass(frozen=True)
class Tabulate(Expr):
    """Array tabulation ``[[ body | i1 < bound1, ..., ik < boundk ]]``.

    The defining function is ``λ(i1,...,ik). body``; bounds may not
    mention the index variables (they are evaluated first).
    """

    vars: Tuple[str, ...]
    bounds: Tuple[Expr, ...]
    body: Expr

    BINDER_FIELDS = ("vars",)

    def __post_init__(self):
        if not self.vars or len(self.vars) != len(self.bounds):
            raise ValueError("tabulation needs one bound per index variable")
        if len(set(self.vars)) != len(self.vars):
            raise ValueError("tabulation index variables must be distinct")

    @property
    def rank(self) -> int:
        return len(self.vars)

    def parts(self):
        out = [(bound, ()) for bound in self.bounds]
        out.append((self.body, self.vars))
        return out

    def with_parts(self, children):
        *bounds, body = children
        return Tabulate(self.vars, tuple(bounds), body)


@dataclass(frozen=True)
class Subscript(Expr):
    """Array subscripting ``array[i1, ..., ik]`` (⊥ when out of bounds)."""

    array: Expr
    indices: Tuple[Expr, ...]

    def __post_init__(self):
        if not self.indices:
            raise ValueError("subscript needs at least one index")

    @property
    def rank(self) -> int:
        return len(self.indices)

    def parts(self):
        return [(self.array, ())] + [(i, ()) for i in self.indices]

    def with_parts(self, children):
        array, *indices = children
        return Subscript(array, tuple(indices))


@dataclass(frozen=True)
class Dim(Expr):
    """``dim_k(e)``: the length (k=1) or k-tuple of lengths (k>=2)."""

    expr: Expr
    rank: int

    def __post_init__(self):
        if self.rank < 1:
            raise ValueError("dim rank must be >= 1")

    def parts(self):
        return [(self.expr, ())]

    def with_parts(self, children):
        (expr,) = children
        return Dim(expr, self.rank)


@dataclass(frozen=True)
class IndexSet(Expr):
    """``index_k(e) : {N^k × t} -> [[{t}]]_k`` — the implicit group-by.

    Holes become ``{}``; duplicate keys group all their values (Section 2).
    """

    expr: Expr
    rank: int

    def __post_init__(self):
        if self.rank < 1:
            raise ValueError("index rank must be >= 1")

    def parts(self):
        return [(self.expr, ())]

    def with_parts(self, children):
        (expr,) = children
        return IndexSet(expr, self.rank)


@dataclass(frozen=True)
class Get(Expr):
    """``get(e)``: the unique element of a singleton set, else ⊥."""

    expr: Expr

    def parts(self):
        return [(self.expr, ())]

    def with_parts(self, children):
        (expr,) = children
        return Get(expr)


@dataclass(frozen=True)
class Bottom(Expr):
    """The explicit error value ⊥ (Figure 1, Errors)."""

    parts = _no_parts
    with_parts = _identity_with_parts


@dataclass(frozen=True)
class MkArray(Expr):
    """The efficient literal ``[[n1,...,nk; e0,...,e_{N-1}]]`` of Section 3.

    Dimensions are given by expressions; the number of value expressions
    must equal the product of the evaluated dimensions, else ⊥.
    """

    dims: Tuple[Expr, ...]
    items: Tuple[Expr, ...]

    def __post_init__(self):
        if not self.dims:
            raise ValueError("MkArray needs at least one dimension")

    @property
    def rank(self) -> int:
        return len(self.dims)

    def parts(self):
        return [(d, ()) for d in self.dims] + [(i, ()) for i in self.items]

    def with_parts(self, children):
        dims = tuple(children[: len(self.dims)])
        items = tuple(children[len(self.dims):])
        return MkArray(dims, items)


@dataclass(frozen=True)
class Prim(Expr):
    """A named primitive: builtin or dynamically registered (Section 4.1)."""

    name: str

    parts = _no_parts
    with_parts = _identity_with_parts


@dataclass(frozen=True)
class Const(Expr):
    """An embedded complex-object constant (e.g. a value read by readval)."""

    value: Any

    parts = _no_parts
    with_parts = _identity_with_parts

    def __hash__(self):
        return hash(("Const", _hashable(self.value)))


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:  # pragma: no cover - values are hashable by design
        return repr(value)


# -- Section 6 extension constructs -----------------------------------------

@dataclass(frozen=True)
class EmptyBag(Expr):
    """The empty bag ``{||}`` (NBC)."""

    parts = _no_parts
    with_parts = _identity_with_parts


@dataclass(frozen=True)
class SingletonBag(Expr):
    """Singleton bag ``{|e|}`` (NBC)."""

    expr: Expr

    def parts(self):
        return [(self.expr, ())]

    def with_parts(self, children):
        (expr,) = children
        return SingletonBag(expr)


@dataclass(frozen=True)
class BagUnion(Expr):
    """Additive bag union ``e1 ⊎ e2`` (NBC)."""

    left: Expr
    right: Expr

    def parts(self):
        return [(self.left, ()), (self.right, ())]

    def with_parts(self, children):
        left, right = children
        return BagUnion(left, right)


@dataclass(frozen=True)
class BagExt(Expr):
    """``⊎{| body | var ∈ source |}`` (NBC monad extension)."""

    var: str
    body: Expr
    source: Expr

    BINDER_FIELDS = ("var",)

    def parts(self):
        return [(self.source, ()), (self.body, (self.var,))]

    def with_parts(self, children):
        source, body = children
        return BagExt(self.var, body, source)


@dataclass(frozen=True)
class ExtRank(Expr):
    """Ranked union ``⋃_r{ body | var_idx ∈ source }`` (Section 6).

    ``source`` is enumerated in the canonical order ``<_s``; ``body`` sees
    both the element (``var``) and its 1-based rank (``idx``).
    """

    var: str
    idx: str
    body: Expr
    source: Expr

    BINDER_FIELDS = ("var", "idx")

    def parts(self):
        return [(self.source, ()), (self.body, (self.var, self.idx))]

    def with_parts(self, children):
        source, body = children
        return ExtRank(self.var, self.idx, body, source)


@dataclass(frozen=True)
class BagExtRank(Expr):
    """Ranked bag union ``⊎_r`` — equal values get consecutive ranks."""

    var: str
    idx: str
    body: Expr
    source: Expr

    BINDER_FIELDS = ("var", "idx")

    def parts(self):
        return [(self.source, ()), (self.body, (self.var, self.idx))]

    def with_parts(self, children):
        source, body = children
        return BagExtRank(self.var, self.idx, body, source)


# ---------------------------------------------------------------------------
# generic operations
# ---------------------------------------------------------------------------

def free_vars(expr: Expr) -> FrozenSet[str]:
    """The free variables of ``expr``."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    out: set = set()
    for child, bound in expr.parts():
        out |= free_vars(child) - set(bound)
    return frozenset(out)


def _binder_names(expr: Expr) -> List[str]:
    names: List[str] = []
    for field_name in expr.BINDER_FIELDS:
        value = getattr(expr, field_name)
        if isinstance(value, tuple):
            names.extend(value)
        else:
            names.append(value)
    return names


def _rename_binders(expr: Expr, renaming: Dict[str, str]) -> Expr:
    """Return ``expr`` with binder fields renamed and bodies adjusted."""
    replacements: Dict[str, Any] = {}
    for field_name in expr.BINDER_FIELDS:
        value = getattr(expr, field_name)
        if isinstance(value, tuple):
            replacements[field_name] = tuple(renaming.get(v, v) for v in value)
        else:
            replacements[field_name] = renaming.get(value, value)
    renamed = dataclasses.replace(expr, **replacements)
    # adjust children that the binders scope over
    substitutions = {old: Var(new) for old, new in renaming.items()}
    new_children: List[Expr] = []
    for child, bound in expr.parts():
        if any(b in renaming for b in bound):
            new_children.append(substitute(child, substitutions))
        else:
            new_children.append(child)
    return renamed.with_parts(new_children)


def substitute(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Capture-avoiding simultaneous substitution ``expr{x := e, ...}``."""
    if not mapping:
        return expr
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    binders = _binder_names(expr)
    if binders:
        # drop shadowed substitutions; freshen binders that would capture
        live = {k: v for k, v in mapping.items() if k not in binders}
        if not live:
            return expr
        replacement_fvs: set = set()
        for value in live.values():
            replacement_fvs |= free_vars(value)
        capturing = [b for b in binders if b in replacement_fvs]
        if capturing:
            expr = _rename_binders(
                expr, {b: fresh_var(b) for b in capturing}
            )
        new_children = []
        for child, bound in expr.parts():
            child_map = {k: v for k, v in live.items() if k not in bound}
            new_children.append(
                substitute(child, child_map) if child_map else child
            )
        return expr.with_parts(new_children)
    new_children = [substitute(child, mapping) for child, _ in expr.parts()]
    return expr.with_parts(new_children)


def count_free_occurrences(expr: Expr, name: str) -> int:
    """Number of free occurrences of ``name`` in ``expr``."""
    if isinstance(expr, Var):
        return 1 if expr.name == name else 0
    total = 0
    for child, bound in expr.parts():
        if name not in bound:
            total += count_free_occurrences(child, name)
    return total


def transform_bottom_up(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` at every node."""
    children = [transform_bottom_up(child, fn) for child, _ in expr.parts()]
    return fn(expr.with_parts(children))


def subterms(expr: Expr) -> Iterator[Expr]:
    """Iterate over all subterms of ``expr`` (including itself), pre-order."""
    yield expr
    for child, _ in expr.parts():
        yield from subterms(child)


def node_count(expr: Expr) -> int:
    """Number of AST nodes — the optimizer's size metric."""
    return sum(1 for _ in subterms(expr))


def alpha_equal(a: Expr, b: Expr) -> bool:
    """α-equivalence: equality up to consistent renaming of bound variables.

    Used to verify the paper's normal-form claims (e.g. that
    ``zip ∘ (subseq, subseq)`` and ``subseq ∘ zip`` normalize to the same
    query, Section 5).
    """
    return _alpha(a, b, {}, {}, [0])


def _alpha(a: Expr, b: Expr, env_a: Dict[str, int], env_b: Dict[str, int],
           counter: List[int]) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Var):
        assert isinstance(b, Var)
        level_a = env_a.get(a.name)
        level_b = env_b.get(b.name)
        if level_a is None and level_b is None:
            return a.name == b.name
        return level_a is not None and level_a == level_b
    # non-binder dataclass fields must match exactly
    parts_a = a.parts()
    parts_b = b.parts()
    if len(parts_a) != len(parts_b):
        return False
    if not _same_shape(a, b):
        return False
    for (child_a, bound_a), (child_b, bound_b) in zip(parts_a, parts_b):
        if len(bound_a) != len(bound_b):
            return False
        if bound_a:
            child_env_a = dict(env_a)
            child_env_b = dict(env_b)
            for name_a, name_b in zip(bound_a, bound_b):
                counter[0] += 1
                child_env_a[name_a] = counter[0]
                child_env_b[name_b] = counter[0]
            if not _alpha(child_a, child_b, child_env_a, child_env_b, counter):
                return False
        elif not _alpha(child_a, child_b, env_a, env_b, counter):
            return False
    return True


def _same_shape(a: Expr, b: Expr) -> bool:
    """Compare the non-expression, non-binder fields of two same-class nodes."""
    for field in dataclasses.fields(a):  # type: ignore[arg-type]
        if field.name in a.BINDER_FIELDS:
            continue
        value_a = getattr(a, field.name)
        value_b = getattr(b, field.name)
        if isinstance(value_a, Expr):
            continue  # handled via parts()
        if isinstance(value_a, tuple) and value_a and isinstance(value_a[0], Expr):
            continue
        if value_a != value_b:
            return False
    return True


#: constructs allowed in plain NRC (no naturals, no arrays) — used by the
#: expressiveness module to delimit language fragments
NRC_NODES = (
    Var, Lam, App, TupleE, Proj, EmptySet, Singleton, Union, Ext,
    BoolLit, If, Cmp, Get, Bottom, StrLit, RealLit, Const, Prim,
)

#: the extra constructs NRC^aggr adds (arithmetic + summation, Section 6)
AGGR_NODES = NRC_NODES + (NatLit, Arith, Sum)

#: full NRCA (Figure 1)
NRCA_NODES = AGGR_NODES + (Gen, Tabulate, Subscript, Dim, IndexSet, MkArray)


__all__ = [
    "Expr", "Var", "Lam", "App", "TupleE", "Proj", "EmptySet", "Singleton",
    "Union", "Ext", "BoolLit", "If", "Cmp", "NatLit", "RealLit", "StrLit",
    "Arith", "Gen", "Sum", "Tabulate", "Subscript", "Dim", "IndexSet",
    "Get", "Bottom", "MkArray", "Prim", "Const",
    "EmptyBag", "SingletonBag", "BagUnion", "BagExt", "ExtRank", "BagExtRank",
    "CMP_OPS", "ARITH_OPS", "fresh_var", "free_vars", "substitute",
    "count_free_occurrences",
    "transform_bottom_up", "subterms", "node_count", "alpha_equal",
    "NRC_NODES", "AGGR_NODES", "NRCA_NODES",
]
