"""Pretty-printer for core NRCA expressions.

Renders the abstract syntax back into a readable AQL-flavoured notation —
used by the REPL to echo optimized queries, by tests for readable failure
messages, and by the documentation examples.
"""

from __future__ import annotations

from repro.core import ast


def pprint(expr: ast.Expr) -> str:
    """Render a core expression as text."""
    return _pp(expr, 0)


def _pp(expr: ast.Expr, depth: int) -> str:
    if depth > 200:
        return "..."
    method = _PRINTERS.get(type(expr))
    if method is None:
        return f"<{type(expr).__name__}>"
    return method(expr, depth + 1)


def _paren(text: str) -> str:
    if text and (text[0].isalnum() or text[0] in "([{\\\"" or text in
                 ("true", "false", "bottom")):
        return text
    return f"({text})"


def _var(e: ast.Var, d):
    return e.name


def _lam(e: ast.Lam, d):
    return f"fn \\{e.param} => {_pp(e.body, d)}"


def _app(e: ast.App, d):
    fn = _pp(e.fn, d)
    if isinstance(e.fn, (ast.Lam,)):
        fn = f"({fn})"
    return f"{fn}!({_pp(e.arg, d)})"


def _tuple(e: ast.TupleE, d):
    return "(" + ", ".join(_pp(i, d) for i in e.items) + ")"


def _proj(e: ast.Proj, d):
    return f"pi_{e.index},{e.arity}({_pp(e.expr, d)})"


def _empty_set(e: ast.EmptySet, d):
    return "{}"


def _singleton(e: ast.Singleton, d):
    return "{" + _pp(e.expr, d) + "}"


def _union(e: ast.Union, d):
    return f"{_pp(e.left, d)} union {_pp(e.right, d)}"


def _ext(e: ast.Ext, d):
    return (f"bigunion{{{_pp(e.body, d)} | \\{e.var} <- "
            f"{_pp(e.source, d)}}}")


def _bool(e: ast.BoolLit, d):
    return "true" if e.value else "false"


def _if(e: ast.If, d):
    return (f"if {_pp(e.cond, d)} then {_pp(e.then, d)} "
            f"else {_pp(e.orelse, d)}")


def _cmp(e: ast.Cmp, d):
    return f"{_pp(e.left, d)} {e.op} {_pp(e.right, d)}"


def _nat(e: ast.NatLit, d):
    return str(e.value)


def _real(e: ast.RealLit, d):
    return repr(e.value)


def _str(e: ast.StrLit, d):
    return f'"{e.value}"'


def _arith(e: ast.Arith, d):
    left = _pp(e.left, d)
    right = _pp(e.right, d)
    if isinstance(e.left, (ast.Arith, ast.If, ast.Cmp)):
        left = f"({left})"
    if isinstance(e.right, (ast.Arith, ast.If, ast.Cmp)):
        right = f"({right})"
    return f"{left} {e.op} {right}"


def _gen(e: ast.Gen, d):
    return f"gen!({_pp(e.expr, d)})"


def _sum(e: ast.Sum, d):
    return f"sum{{{_pp(e.body, d)} | \\{e.var} <- {_pp(e.source, d)}}}"


def _tabulate(e: ast.Tabulate, d):
    binders = ", ".join(
        f"\\{var} < {_pp(bound, d)}" for var, bound in zip(e.vars, e.bounds)
    )
    return f"[[{_pp(e.body, d)} | {binders}]]"


def _subscript(e: ast.Subscript, d):
    target = _pp(e.array, d)
    if not isinstance(e.array, (ast.Var, ast.Const, ast.Prim, ast.Subscript)):
        target = f"({target})"
    return target + "[" + ", ".join(_pp(i, d) for i in e.indices) + "]"


def _dim(e: ast.Dim, d):
    return f"dim_{e.rank}({_pp(e.expr, d)})"


def _index(e: ast.IndexSet, d):
    return f"index_{e.rank}({_pp(e.expr, d)})"


def _get(e: ast.Get, d):
    return f"get({_pp(e.expr, d)})"


def _bottom(e: ast.Bottom, d):
    return "bottom"


def _mk_array(e: ast.MkArray, d):
    dims = ", ".join(_pp(x, d) for x in e.dims)
    items = ", ".join(_pp(x, d) for x in e.items)
    return f"[[{dims}; {items}]]"


def _prim(e: ast.Prim, d):
    return e.name


def _const(e: ast.Const, d):
    from repro.objects.exchange import dumps

    try:
        return dumps(e.value)
    except Exception:
        return repr(e.value)


def _empty_bag(e: ast.EmptyBag, d):
    return "{||}"


def _singleton_bag(e: ast.SingletonBag, d):
    return "{|" + _pp(e.expr, d) + "|}"


def _bag_union(e: ast.BagUnion, d):
    return f"{_pp(e.left, d)} bunion {_pp(e.right, d)}"


def _bag_ext(e: ast.BagExt, d):
    return (f"bigbunion{{|{_pp(e.body, d)} | \\{e.var} <- "
            f"{_pp(e.source, d)}|}}")


def _ext_rank(e: ast.ExtRank, d):
    return (f"bigunion_r{{{_pp(e.body, d)} | \\{e.var}_{e.idx} <- "
            f"{_pp(e.source, d)}}}")


def _bag_ext_rank(e: ast.BagExtRank, d):
    return (f"bigbunion_r{{|{_pp(e.body, d)} | \\{e.var}_{e.idx} <- "
            f"{_pp(e.source, d)}|}}")


_PRINTERS = {
    ast.Var: _var,
    ast.Lam: _lam,
    ast.App: _app,
    ast.TupleE: _tuple,
    ast.Proj: _proj,
    ast.EmptySet: _empty_set,
    ast.Singleton: _singleton,
    ast.Union: _union,
    ast.Ext: _ext,
    ast.BoolLit: _bool,
    ast.If: _if,
    ast.Cmp: _cmp,
    ast.NatLit: _nat,
    ast.RealLit: _real,
    ast.StrLit: _str,
    ast.Arith: _arith,
    ast.Gen: _gen,
    ast.Sum: _sum,
    ast.Tabulate: _tabulate,
    ast.Subscript: _subscript,
    ast.Dim: _dim,
    ast.IndexSet: _index,
    ast.Get: _get,
    ast.Bottom: _bottom,
    ast.MkArray: _mk_array,
    ast.Prim: _prim,
    ast.Const: _const,
    ast.EmptyBag: _empty_bag,
    ast.SingletonBag: _singleton_bag,
    ast.BagUnion: _bag_union,
    ast.BagExt: _bag_ext,
    ast.ExtRank: _ext_rank,
    ast.BagExtRank: _bag_ext_rank,
}

__all__ = ["pprint"]
