r"""The interactive AQL read-eval-print loop.

Run ``python -m repro.system.repl`` (or the installed ``aql`` script).
Statements end with ``;`` and may span lines, like the paper's session::

    : val \months = [[0,31,28,31,30,31,30,31,31,30,31,30]];
    typ months : [[nat]]_1
    val months = [[(0):0, (1):31, (2):28, ...]]

Commands: ``:quit`` exits, ``:macros`` lists registered macros,
``:readers`` / ``:writers`` list drivers, ``:noopt`` / ``:opt`` toggle
the optimizer, ``:load FILE`` runs an AQL script into the session,
``:cache`` prints the plan-cache occupancy and counters (``:cache
clear`` empties it — see ``docs/PLAN_CACHE.md``), ``:parallel
[WORKERS [BACKEND [MIN_CELLS]]]`` shows or tunes the sharded executor
and ``:parallel adaptive on|off`` toggles measured-rate dispatch
selection (see ``docs/PARALLEL.md``), ``:setops [on|off]`` shows or toggles the
set-engine fast paths (hash equi-joins and sort-based ``index_k``
grouping — see ``docs/SETOPS.md``), ``:cost [off|observe|active]``
shows or switches the calibrated cost model (``:cost floor N`` and
``:cost replan N`` tune its thresholds — see ``docs/COST_MODEL.md``),
and ``:profile QUERY;`` runs a statement
with observability on and prints the EXPLAIN report (optimized core,
per-stage spans, rule firings, evaluator counters — see
``docs/OBSERVABILITY.md``).

Non-interactive use: ``aql script.aql [more.aql ...]`` executes the
scripts and exits (the paper's batch view of the same top level).
"""

from __future__ import annotations

import sys

from repro.errors import AQLError
from repro.system.session import Session

BANNER = (
    "AQL - a query language for multidimensional arrays\n"
    "(reproduction of Libkin, Machlin & Wong, SIGMOD 1996)\n"
    "statements end with ';'   :quit exits\n"
)


def parallel_command(session: Session, args: str) -> str:
    """Implement ``:parallel`` — show or tune the sharded executor.

    ``:parallel`` prints the current config; ``:parallel WORKERS
    [BACKEND] [MIN_CELLS]`` updates it (``:parallel 4 process``,
    ``:parallel 0`` back to serial); ``:parallel adaptive on|off``
    toggles measured-rate dispatch selection (the status line then
    shows the learned cells-per-second rates).  Every field is
    validated before anything is mutated, so a rejected update leaves
    the config untouched.  See ``docs/PARALLEL.md``.
    """
    from repro.core import parallel
    from repro.core.fastpath import PARALLEL_BACKENDS

    config = session.env.parallel
    if args:
        fields = args.split()
        if fields[0] == "adaptive":
            if len(fields) > 1:
                if fields[1] == "on":
                    config.adaptive = True
                elif fields[1] == "off":
                    config.adaptive = False
                else:
                    return (f"usage: :parallel adaptive [on|off] "
                            f"(got {fields[1]!r})")
        else:
            try:
                workers = int(fields[0])
                if workers < 0:
                    raise ValueError
            except ValueError:
                return (f"workers must be a non-negative int, "
                        f"got {fields[0]!r}")
            backend = config.backend
            if len(fields) > 1:
                backend = fields[1]
                if backend not in PARALLEL_BACKENDS:
                    return (f"unknown backend {backend!r} (expected one of "
                            f"{', '.join(PARALLEL_BACKENDS)})")
            min_cells = config.min_cells
            if len(fields) > 2:
                try:
                    min_cells = int(fields[2])
                    if min_cells < 0:
                        raise ValueError
                except ValueError:
                    return (f"min_cells must be a non-negative int, "
                            f"got {fields[2]!r}")
            config.workers = workers
            config.backend = backend
            config.min_cells = min_cells
    state = "enabled" if parallel.ENABLED else \
        "disabled (REPRO_NO_PARALLEL=1)"
    line = (f"parallel {state}: workers={config.workers} "
            f"backend={config.backend} min_cells={config.min_cells} "
            f"kernel_min_cells={config.kernel_min_cells} "
            f"adaptive={'on' if config.adaptive else 'off'}")
    rates = config.rates()
    if rates:
        shown = " ".join(f"{mode}={rate:.0f}"
                         for mode, rate in sorted(rates.items()))
        line += f" rates[cells/s]: {shown}"
    return line


def setops_command(session: Session, args: str) -> str:
    """Implement ``:setops`` — show or toggle the set-engine fast paths.

    ``:setops`` prints the current state; ``:setops on`` / ``:setops
    off`` flips the session switch.  The ``REPRO_NO_SETOPS=1`` kill
    switch wins over the session setting.  See ``docs/SETOPS.md``.
    """
    from repro.core import setops

    config = session.env.parallel
    if args:
        if args == "on":
            config.setops = True
        elif args == "off":
            config.setops = False
        else:
            return f"usage: :setops [on|off] (got {args!r})"
    state = "enabled" if setops.ENABLED else "disabled (REPRO_NO_SETOPS=1)"
    return (f"setops {state}: session="
            f"{'on' if config.setops else 'off'} "
            f"min_cells={config.min_cells}")


def cost_command(session: Session, args: str) -> str:
    """Implement ``:cost`` — show or tune the calibrated cost model.

    ``:cost`` prints the model state (mode, coefficients, counters,
    last estimate-vs-actual); ``:cost off|observe|active`` switches
    the mode; ``:cost floor N`` sets the unit floor below which an
    active model skips the motion phase; ``:cost replan N`` sets the
    divergence factor that triggers adaptive re-planning.  Every
    argument is validated before anything is mutated.  The
    ``REPRO_NO_COST=1`` kill switch wins over the session setting.
    See ``docs/COST_MODEL.md``.
    """
    from repro.optimizer.cost import COST_MODES

    cost = session.env.cost
    if cost is None:
        return "cost model disabled (REPRO_NO_COST=1)"
    if args:
        fields = args.split()
        if fields[0] in ("floor", "replan"):
            if len(fields) != 2:
                return f"usage: :cost {fields[0]} N (got {args!r})"
            try:
                value = float(fields[1])
                if value < 0 or (fields[0] == "replan" and value < 1.0):
                    raise ValueError
            except ValueError:
                kind = ("a non-negative number" if fields[0] == "floor"
                        else "a number >= 1")
                return f"{fields[0]} must be {kind}, got {fields[1]!r}"
            if fields[0] == "floor":
                cost.floor_units = value
            else:
                cost.replan_factor = value
        elif fields[0] in COST_MODES and len(fields) == 1:
            cost.mode = fields[0]
        else:
            return (f"usage: :cost [{'|'.join(COST_MODES)}"
                    f"|floor N|replan N] (got {args!r})")
    return cost.render()


def run_file(session: Session, path: str) -> bool:
    """Execute an AQL script file, echoing outputs; False on error."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"error: cannot read {path!r}: {exc}")
        return False
    try:
        session.run_script(source, echo=True)
    except AQLError as exc:
        print(f"error: {exc}")
        return False
    return True


def main(argv=None) -> int:
    """Entry point for the ``aql`` console script."""
    argv = list(sys.argv[1:] if argv is None else argv)
    session = Session()
    if argv:
        ok = all(run_file(session, path) for path in argv)
        return 0 if ok else 1
    print(BANNER, end="")
    buffer = ""
    while True:
        prompt = ": " if not buffer else ":: "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        except KeyboardInterrupt:
            print()
            buffer = ""
            continue
        stripped = line.strip()
        # ``:profile`` takes a statement, so it buffers like one and is
        # interpreted by Session.run rather than the command dispatcher
        if not buffer and stripped.startswith(":") \
                and not stripped.startswith(":profile"):
            if stripped in (":quit", ":q"):
                return 0
            if stripped == ":macros":
                print(" ".join(session.env.macro_names()))
                continue
            if stripped == ":readers":
                print(" ".join(session.env.drivers.reader_names()))
                continue
            if stripped == ":writers":
                print(" ".join(session.env.drivers.writer_names()))
                continue
            if stripped == ":noopt":
                session.optimize = False
                print("optimizer off")
                continue
            if stripped == ":opt":
                session.optimize = True
                print("optimizer on")
                continue
            if stripped.startswith(":load "):
                run_file(session, stripped[len(":load "):].strip())
                continue
            if stripped == ":cache":
                print(session.plan_cache.render())
                continue
            if stripped == ":cache clear":
                session.plan_cache.clear()
                print("plan cache cleared")
                continue
            if stripped == ":parallel" or stripped.startswith(":parallel "):
                print(parallel_command(session,
                                       stripped[len(":parallel"):].strip()))
                continue
            if stripped == ":setops" or stripped.startswith(":setops "):
                print(setops_command(session,
                                     stripped[len(":setops"):].strip()))
                continue
            if stripped == ":cost" or stripped.startswith(":cost "):
                print(cost_command(session,
                                   stripped[len(":cost"):].strip()))
                continue
            print(f"unknown command {stripped!r}")
            continue
        buffer += line + "\n"
        if ";" not in line:
            continue
        source, buffer = buffer, ""
        try:
            session.run_script(source, echo=True)
        except AQLError as exc:
            print(f"error: {exc}")
        except RecursionError:
            print("error: expression too deeply nested")
    return 0


if __name__ == "__main__":
    sys.exit(main())
