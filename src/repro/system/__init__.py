"""The AQL read-eval-print system (Section 4).

* :class:`~repro.system.session.Session` — the AQL top level: ``val`` and
  ``macro`` declarations, ``readval``/``writeval`` commands, and query
  evaluation through the full pipeline (parse → desugar → resolve →
  typecheck → optimize → evaluate), echoing ``typ``/``val`` lines like
  the paper's sample session.
* :mod:`repro.system.repl` — the interactive loop (``python -m
  repro.system.repl``).
"""

from repro.system.session import Output, Session

__all__ = ["Session", "Output"]
