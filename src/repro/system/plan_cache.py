"""A compiled-query plan cache for the repeated-query serving path.

The Section 4.1 pipeline (parse → desugar → resolve → typecheck →
optimize → evaluate) is re-run from scratch for every statement a
:class:`~repro.system.session.Session` executes, and the observability
layer shows the ``optimize`` span dominating repeated-query latency.
This module caches the *result* of that pipeline — the optimized core,
its inferred type, and (for the compiled backend) the generated closure
— so the second execution of a query goes straight to evaluation.

Keying
------

Entries are keyed on :func:`fingerprint`, a canonical structural
fingerprint of the desugared core expression: binders are numbered by
de-Bruijn-style levels, so any two α-equivalent spellings of the same
query (different binder names, whitespace, sugar that desugars
identically) share one entry.  The environment's *meaning* for the
query's free names is folded in through generation counters rather than
through substitution, which keeps a cache probe O(|query|) — resolution
(which splices in full macro bodies) never runs on the hit path.

Invalidation contract
---------------------

Correctness hinges on never reusing a stale plan.  Two mechanisms, both
driven by :class:`~repro.env.environment.TopEnv` mutation accounting:

* **structural registrations** (primitives, macros, rewrite rules) bump
  the environment's global generation; every cached plan was compiled
  under some generation and is invalidated when it changes;
* **value rebinding** (``set_val``, including the ``readval`` path)
  bumps a per-name generation, invalidating exactly the plans whose
  source *references* that name (each entry records its free names) —
  plans that do not mention the name survive.

Eager invalidation runs through the listener :meth:`PlanCache.on_env_mutation`
(subscribed by the owning session); the per-entry generation check in
:meth:`PlanCache.lookup` is the backstop that makes stale reuse
impossible even for mutations performed behind the listener's back.

The cache is LRU-bounded (``capacity`` entries, 0 disables) and fully
observable: hit/miss/eviction/invalidation counters are surfaced in
:class:`~repro.obs.explain.ExplainReport`, ``:profile``, and the REPL's
``:cache`` command.  See ``docs/PLAN_CACHE.md``.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, Iterable, Optional

from repro.core import ast

#: default LRU capacity of a session's plan cache
DEFAULT_CAPACITY = 128


# ---------------------------------------------------------------------------
# canonical structural fingerprints
# ---------------------------------------------------------------------------

def fingerprint(expr: ast.Expr) -> Hashable:
    """A canonical structural fingerprint of a core expression.

    α-equivalent expressions (equal up to consistent renaming of bound
    variables) produce equal fingerprints: bound variables are replaced
    by de-Bruijn-style binding levels, free variables keep their names,
    and every non-expression field (operators, ranks, literal values)
    participates verbatim.  The result is a nested tuple usable as a
    dictionary key.
    """
    return _fp(expr, {}, [0])


def _fp(expr: ast.Expr, env: Dict[str, int], counter) -> Hashable:
    if isinstance(expr, ast.Var):
        level = env.get(expr.name)
        if level is not None:
            return ("bound", level)
        return ("free", expr.name)
    label = [type(expr).__name__]
    for fld in dataclasses.fields(expr):  # type: ignore[arg-type]
        if fld.name in expr.BINDER_FIELDS:
            continue
        value = getattr(expr, fld.name)
        if isinstance(value, ast.Expr):
            continue  # reached through parts()
        if isinstance(value, tuple) and value \
                and isinstance(value[0], ast.Expr):
            continue
        label.append(_hashable(value))
    children = []
    for child, bound in expr.parts():
        if bound:
            child_env = dict(env)
            for name in bound:
                counter[0] += 1
                child_env[name] = counter[0]
            children.append(_fp(child, child_env, counter))
        else:
            children.append(_fp(child, env, counter))
    return (tuple(label), tuple(children))


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:  # pragma: no cover - complex objects hash by design
        return repr(value)


# ---------------------------------------------------------------------------
# cache entries and executable plans
# ---------------------------------------------------------------------------

@dataclass
class PlanEntry:
    """One cached compilation: optimized core plus validity metadata."""

    key: Hashable
    core: ast.Expr
    inferred: Any                     # the inferred Type
    free_names: FrozenSet[str]        # free vars of the *pre-resolve* core
    generation: int                   # TopEnv.generation at compile time
    val_generations: Dict[str, int]   # per-free-name val generations
    evaluator: Any = None             # CompiledEvaluator ('compiled' only)
    #: the *pre-resolve* desugared core, kept so adaptive
    #: re-optimization can recompile the query through the full
    #: pipeline when observed cost diverges from the estimate
    source_core: Any = None
    #: the cost model's unit estimate for :attr:`core` (None: model off)
    estimated_units: Optional[float] = None
    #: observed run statistics, folded in by the session after every
    #: execution of this plan (an equal-weight EMA over seconds)
    runs: int = 0
    observed_seconds: float = 0.0
    #: set once this entry has been re-planned — divergence re-plans at
    #: most once per entry, so a query the estimator simply cannot see
    #: through (e.g. data-dependent extents) does not thrash
    replanned: bool = False


@dataclass
class Plan:
    """An executable query plan handed to the session's evaluate step."""

    core: ast.Expr
    inferred: Any
    cached: bool = False
    #: a reusable :class:`~repro.core.compile.CompiledEvaluator` holding
    #: the generated closure, or None for the interpreter backend
    evaluator: Any = None
    #: the backing :class:`PlanEntry` (None when caching is disabled);
    #: the session folds observed run stats into it and re-plans it on
    #: estimate divergence
    entry: Any = None
    #: the cost model's unit estimate for :attr:`core` (None: model off)
    estimated_units: Optional[float] = None


@dataclass
class PlanCacheStats:
    """Hit/miss/eviction/invalidation/replan counters, per cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: entries recompiled by adaptive re-optimization (observed cost
    #: diverged from the estimate — see ``docs/COST_MODEL.md``)
    replans: int = 0

    def to_dict(self) -> Dict[str, int]:
        """A JSON-safe snapshot of every counter."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "replans": self.replans,
        }

    def render(self) -> str:
        """The one-line counter summary used by ``:cache``/``:profile``."""
        return (f"hits {self.hits}  misses {self.misses}  "
                f"evictions {self.evictions}  "
                f"invalidations {self.invalidations}  "
                f"replans {self.replans}")


class PlanCache:
    """A bounded LRU cache of compiled query plans.

    Owned by a :class:`~repro.system.session.Session`; consulted by
    :meth:`Session.prepare` before the resolve → typecheck → optimize
    pipeline and written back after a miss.  See the module docstring
    for the keying and invalidation contract.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[Hashable, PlanEntry]" = OrderedDict()

    # -- basics -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether caching is on (a non-positive capacity disables it)."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(core: ast.Expr, optimize: bool, backend: str) -> Hashable:
        """The cache key: canonical fingerprint + pipeline configuration."""
        return (fingerprint(core), bool(optimize), backend)

    # -- lookup / insert --------------------------------------------------

    def lookup(self, key: Hashable, env) -> Optional[PlanEntry]:
        """Return a *valid* entry for ``key`` (LRU-touched), else None.

        Validity re-checks the environment's generation counters, so a
        mutation that somehow bypassed eager invalidation still cannot
        resurrect a stale plan — it is dropped here and counted.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if not self._valid(entry, env):
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def _valid(self, entry: PlanEntry, env) -> bool:
        if entry.generation != env.generation:
            return False
        for name, generation in entry.val_generations.items():
            if env.val_generation(name) != generation:
                return False
        return True

    def insert(self, key: Hashable, core: ast.Expr, inferred: Any,
               free_names: Iterable[str], env,
               evaluator: Any = None, source_core: Any = None,
               estimated_units: Optional[float] = None
               ) -> Optional[PlanEntry]:
        """Record a freshly compiled plan; evicts LRU entries over capacity."""
        if not self.enabled:
            return None
        names = frozenset(free_names)
        entry = PlanEntry(
            key=key,
            core=core,
            inferred=inferred,
            free_names=names,
            generation=env.generation,
            val_generations={name: env.val_generation(name)
                             for name in names},
            evaluator=evaluator,
            source_core=source_core,
            estimated_units=estimated_units,
        )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return entry

    # -- invalidation -----------------------------------------------------

    def on_env_mutation(self, kind: str, name: Optional[str] = None) -> None:
        """The :meth:`TopEnv.add_mutation_listener` hook.

        ``val`` rebindings invalidate only the plans referencing the
        rebound name; structural registrations (primitive/macro/rule)
        flush everything — their effect on resolution and optimization
        is global.
        """
        if kind == "val" and name is not None:
            self.invalidate_name(name)
        else:
            self.invalidate_all()

    def invalidate_name(self, name: str) -> int:
        """Drop every entry whose source references ``name`` free."""
        stale = [key for key, entry in self._entries.items()
                 if name in entry.free_names]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def invalidate_all(self) -> int:
        """Drop every entry (structural environment change)."""
        count = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += count
        return count

    def clear(self) -> None:
        """Empty the cache without counting invalidations (``:cache clear``)."""
        self._entries.clear()

    # -- reporting --------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Occupancy + counters, JSON-safe (embedded in ExplainReport)."""
        return {"capacity": self.capacity, "entries": len(self._entries),
                **self.stats.to_dict()}

    def render(self) -> str:
        """The human-readable ``:cache`` text."""
        return (f"plan cache: {len(self._entries)}/{self.capacity} entries\n"
                f"{self.stats.render()}")

    def __repr__(self) -> str:
        return (f"PlanCache({len(self._entries)}/{self.capacity}, "
                f"hits={self.stats.hits}, misses={self.stats.misses})")


__all__ = [
    "DEFAULT_CAPACITY",
    "Plan",
    "PlanCache",
    "PlanCacheStats",
    "PlanEntry",
    "fingerprint",
]
