"""The AQL top-level session (the inner read-eval-print loop of §4).

A :class:`Session` accepts AQL top-level statements and runs each through
the query-processing pipeline of Section 4.1:

    parse → desugar (Figure 2) → resolve (macro substitution, vals,
    primitives) → typecheck (Figure 1) → optimize (Section 5) → evaluate

Each statement yields an :class:`Output` that renders exactly like the
paper's sample session::

    typ it : {nat}
    val it = {25, 27, 28}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.core import ast
from repro.core.printer import pprint
from repro.env.environment import TopEnv
from repro.errors import SessionError
from repro.obs import ExplainReport
from repro.objects.exchange import pretty
from repro.surface.desugar import Desugarer
from repro.surface.parser import parse_program
from repro.surface import sast as S
from repro.types.types import Type, TypeScheme, type_of_value

#: the session-level profiling command recognized by :meth:`Session.run`
PROFILE_PREFIX = ":profile"


@dataclass
class Output:
    """The result of executing one top-level statement."""

    kind: str            # 'query' | 'val' | 'macro' | 'readval' |
                         # 'writeval' | 'profile'
    name: str            # bound name, or 'it' for bare queries
    type_text: str
    value: Any = None
    has_value: bool = False
    #: the observability report attached by ``:profile``/``explain``
    explain: Optional[ExplainReport] = None

    def render(self, limit: int = 12) -> str:
        """The paper-style echo lines."""
        lines = [f"typ {self.name} : {self.type_text}"]
        if self.has_value:
            lines.append(f"val {self.name} = {pretty(self.value, limit)}")
        elif self.kind == "macro":
            lines.append(f"val {self.name} = {self.name} "
                         f"registered as macro.")
        elif self.kind == "writeval":
            lines.append(f"val {self.name} written.")
        if self.explain is not None:
            lines.append(self.explain.render())
        return "\n".join(lines)


class Session:
    """An AQL top-level session over a :class:`~repro.env.TopEnv`."""

    def __init__(self, env: Optional[TopEnv] = None, optimize: bool = True,
                 backend: str = "interpreter"):
        self.env = env if env is not None else TopEnv.standard(backend)
        self.optimize = optimize
        self._desugarer = Desugarer()
        #: the optimized core of the most recent compilation (EXPLAIN)
        self._last_core: Optional[ast.Expr] = None

    # -- statement execution -----------------------------------------------------

    def run(self, source: str) -> List[Output]:
        """Execute a block of AQL statements; return their outputs.

        A leading ``:profile`` runs the remainder of the source with
        observability enabled and attaches an
        :class:`~repro.obs.ExplainReport` (pipeline spans, per-rule
        firing stats with timings, evaluator counters) to the last
        output.
        """
        stripped = source.lstrip()
        if stripped.startswith(PROFILE_PREFIX):
            return self.profile(stripped[len(PROFILE_PREFIX):])
        tracer = self.env.obs.tracer
        with tracer.span("parse"):
            statements = parse_program(source)
        return [self.execute(statement) for statement in statements]

    def run_script(self, source: str, echo: bool = False) -> List[str]:
        """Execute and render each statement (optionally printing)."""
        rendered = []
        for output in self.run(source):
            text = output.render()
            rendered.append(text)
            if echo:
                print(text)
        return rendered

    def query_value(self, source: str) -> Any:
        """Evaluate a single query expression and return its value.

        A missing final ``;`` is forgiven (it is appended and the parse
        retried), so one-off expressions read naturally.  When the
        retry fails too, the *original* error is re-raised, so its
        position refers to the source the caller actually wrote rather
        than the silently modified retry text.
        """
        from repro.errors import ParseError

        try:
            statements = parse_program(source)
        except ParseError as original:
            try:
                statements = parse_program(source + ";")
            except ParseError:
                raise original from None
        outputs = [self.execute(statement) for statement in statements]
        last = outputs[-1]
        if not last.has_value:
            raise SessionError("statement did not produce a value")
        return last.value

    def execute(self, statement: S.Statement) -> Output:
        """Execute one parsed top-level statement."""
        if isinstance(statement, S.Query):
            return self._query(statement.expr, "it")
        if isinstance(statement, S.ValDecl):
            output = self._query(statement.expr, statement.name)
            self.env.set_val(statement.name, output.value)
            return output
        if isinstance(statement, S.MacroDecl):
            body = self._desugarer.desugar(statement.expr)
            sig = self.env.register_macro(statement.name, body)
            return Output("macro", statement.name, _scheme_text(sig))
        if isinstance(statement, S.ReadVal):
            return self._readval(statement)
        if isinstance(statement, S.WriteVal):
            return self._writeval(statement)
        raise SessionError(f"unknown statement {statement!r}")

    # -- helpers ---------------------------------------------------------------------

    def _compile(self, surface: S.SExpr):
        with self.env.obs.tracer.span("desugar"):
            core = self._desugarer.desugar(surface)
        compiled, inferred = self.env.compile(core, optimize=self.optimize)
        self._last_core = compiled
        return compiled, inferred

    def _query(self, surface: S.SExpr, name: str) -> Output:
        compiled, inferred = self._compile(surface)
        with self.env.obs.tracer.span("evaluate"):
            value = self.env.evaluator().run(compiled)
        return Output("query" if name == "it" else "val", name,
                      str(inferred), value, has_value=True)

    def _readval(self, statement: S.ReadVal) -> Output:
        reader = self.env.drivers.reader(statement.reader)
        compiled, _ = self._compile(statement.args)
        args_value = self.env.evaluator().run(compiled)
        value = reader(args_value)
        self.env.set_val(statement.name, value)
        value_type = type_of_value(value)
        return Output("readval", statement.name, str(value_type),
                      value, has_value=True)

    def _writeval(self, statement: S.WriteVal) -> Output:
        writer = self.env.drivers.writer(statement.writer)
        compiled, inferred = self._compile(statement.expr)
        value = self.env.evaluator().run(compiled)
        args_compiled, _ = self._compile(statement.args)
        args_value = self.env.evaluator().run(args_compiled)
        writer(value, args_value)
        return Output("writeval", "it", str(inferred))

    # -- observability (EXPLAIN / :profile) ----------------------------------------

    def profile(self, source: str) -> List[Output]:
        """Execute ``source`` with observability on; attach the report.

        The last output carries an :class:`~repro.obs.ExplainReport`
        covering the whole block (the optimizer stats and the rendered
        core describe the block's final query).  The environment's
        observability switch is restored afterwards, so profiling one
        statement leaves an otherwise-uninstrumented session zero-cost.
        """
        obs = self.env.obs
        was_enabled = obs.enabled
        obs.enable()
        try:
            outputs = self.run(source)
            if not outputs:
                raise SessionError("nothing to profile")
            spans = obs.tracer.finish()
            last = outputs[-1]
            last.explain = ExplainReport(
                source=source.strip(),
                type_text=last.type_text,
                core_text=(pprint(self._last_core)
                           if self._last_core is not None else ""),
                spans=spans,
                phase_stats=dict(self.env.optimizer.report()),
                metrics=obs.metrics,
                value=last.value,
                has_value=last.has_value,
            )
            if last.kind == "query":
                last.kind = "profile"
            return outputs
        finally:
            if was_enabled:
                obs.reset()
            else:
                obs.disable()

    def explain(self, source: str) -> ExplainReport:
        """The API form of ``:profile``: run one query instrumented and
        return the :class:`~repro.obs.ExplainReport` directly."""
        outputs = self.profile(source)
        report = outputs[-1].explain
        assert report is not None  # profile always attaches one
        return report

    # -- the SML-side registration view (Section 4.1) ------------------------------

    def register_co(self, name: str, fn, signature: TypeScheme | Type,
                    replace: bool = False) -> None:
        """The paper's ``TopEnv.RegisterCO``: add an external primitive."""
        self.env.register_co(name, fn, signature, replace)


def _scheme_text(scheme: TypeScheme) -> str:
    return str(scheme.body)


__all__ = ["Session", "Output", "PROFILE_PREFIX"]
