"""The AQL top-level session (the inner read-eval-print loop of §4).

A :class:`Session` accepts AQL top-level statements and runs each through
the query-processing pipeline of Section 4.1:

    parse → desugar (Figure 2) → resolve (macro substitution, vals,
    primitives) → typecheck (Figure 1) → optimize (Section 5) → evaluate

with one serving-path refinement: compilation results are memoized in a
per-session :class:`~repro.system.plan_cache.PlanCache`, so a repeated
query (the million-user serving path) skips resolve → typecheck →
optimize — and, on the compiled backend, code generation — and goes
straight to evaluation.  Environment mutations invalidate affected
plans (see ``docs/PLAN_CACHE.md``).

Each statement yields an :class:`Output` that renders exactly like the
paper's sample session::

    typ it : {nat}
    val it = {25, 27, 28}
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.core import ast
from repro.core.fastpath import PARALLEL_BACKENDS
from repro.core.printer import pprint
from repro.env.environment import TopEnv
from repro.errors import BottomError, SessionError
from repro.obs import ExplainReport
from repro.objects.exchange import pretty
from repro.surface.desugar import Desugarer
from repro.surface.parser import parse_program
from repro.surface import sast as S
from repro.system.plan_cache import DEFAULT_CAPACITY, Plan, PlanCache
from repro.types.types import Type, TypeScheme, type_of_value

#: the session-level profiling command recognized by :meth:`Session.run`
PROFILE_PREFIX = ":profile"


def _driver_boundary(fn: Any, *args: Any) -> Any:
    """Run a reader/writer, mapping host ``ValueError`` to ⊥.

    The evaluators map stray ``ValueError`` (e.g. an
    :class:`~repro.objects.array.Array` built with mismatched dims
    inside a primitive) to :class:`~repro.errors.BottomError` at their
    ``run`` boundary; drivers are invoked *outside* that boundary, so
    they need the same mapping — a reader materializing a bad array
    must surface the calculus's ⊥, not a Python traceback.
    """
    try:
        return fn(*args)
    except BottomError:
        raise
    except ValueError as exc:
        raise BottomError(f"host value error: {exc}") from exc


@dataclass
class Output:
    """The result of executing one top-level statement."""

    kind: str            # 'query' | 'val' | 'macro' | 'readval' |
                         # 'writeval' | 'profile'
    name: str            # bound name, or 'it' for bare queries
    type_text: str
    value: Any = None
    has_value: bool = False
    #: the observability report attached by ``:profile``/``explain``
    explain: Optional[ExplainReport] = None

    def render(self, limit: int = 12) -> str:
        """The paper-style echo lines."""
        lines = [f"typ {self.name} : {self.type_text}"]
        if self.has_value:
            lines.append(f"val {self.name} = {pretty(self.value, limit)}")
        elif self.kind == "macro":
            lines.append(f"val {self.name} = {self.name} "
                         f"registered as macro.")
        elif self.kind == "writeval":
            lines.append(f"val {self.name} written.")
        if self.explain is not None:
            lines.append(self.explain.render())
        return "\n".join(lines)


class Session:
    """An AQL top-level session over a :class:`~repro.env.TopEnv`."""

    def __init__(self, env: Optional[TopEnv] = None, optimize: bool = True,
                 backend: str = "interpreter",
                 plan_cache_capacity: int = DEFAULT_CAPACITY,
                 parallel_workers: Optional[int] = None,
                 parallel_backend: Optional[str] = None,
                 min_cells: Optional[int] = None,
                 kernel_min_cells: Optional[int] = None,
                 setops: Optional[bool] = None,
                 adaptive: Optional[bool] = None,
                 cost: Any = None):
        self.env = env if env is not None else TopEnv.standard(backend)
        self.optimize = optimize
        # fast-path tuning mutates the TopEnv's shared DispatchConfig in
        # place: every evaluator the env hands out (including compiled
        # plans already resident in the cache) reads it at dispatch time
        if parallel_backend is not None:
            if parallel_backend not in PARALLEL_BACKENDS:
                raise SessionError(
                    f"unknown parallel backend {parallel_backend!r} "
                    f"(expected one of {', '.join(PARALLEL_BACKENDS)})"
                )
            self.env.parallel.backend = parallel_backend
        if parallel_workers is not None:
            if not isinstance(parallel_workers, int) \
                    or isinstance(parallel_workers, bool) \
                    or parallel_workers < 0:
                raise SessionError(
                    f"parallel_workers must be a non-negative int, "
                    f"got {parallel_workers!r}"
                )
            self.env.parallel.workers = parallel_workers
        if min_cells is not None:
            if not isinstance(min_cells, int) \
                    or isinstance(min_cells, bool) or min_cells < 0:
                raise SessionError(
                    f"min_cells must be a non-negative int, "
                    f"got {min_cells!r}"
                )
            self.env.parallel.min_cells = min_cells
        if kernel_min_cells is not None:
            if not isinstance(kernel_min_cells, int) \
                    or isinstance(kernel_min_cells, bool) \
                    or kernel_min_cells < 0:
                raise SessionError(
                    f"kernel_min_cells must be a non-negative int, "
                    f"got {kernel_min_cells!r}"
                )
            self.env.parallel.kernel_min_cells = kernel_min_cells
        if setops is not None:
            if not isinstance(setops, bool):
                raise SessionError(
                    f"setops must be a bool, got {setops!r}"
                )
            self.env.parallel.setops = setops
        if adaptive is not None:
            if not isinstance(adaptive, bool):
                raise SessionError(
                    f"adaptive must be a bool, got {adaptive!r}"
                )
            self.env.parallel.adaptive = adaptive
        if cost is not None:
            # validated before mutation, like every knob above; a bool
            # maps to the extreme modes ("active"/"off"), a string must
            # name a mode.  The REPRO_NO_COST kill switch wins: with no
            # model constructed there is nothing to set, silently —
            # mirroring how :setops defers to REPRO_NO_SETOPS.
            from repro.optimizer.cost import COST_MODES

            if isinstance(cost, bool):
                mode = "active" if cost else "off"
            elif isinstance(cost, str) and cost in COST_MODES:
                mode = cost
            else:
                raise SessionError(
                    f"cost must be a bool or one of "
                    f"{', '.join(COST_MODES)}, got {cost!r}"
                )
            if self.env.cost is not None:
                self.env.cost.mode = mode
        self._desugarer = Desugarer()
        #: the optimized core of the most recent compilation (EXPLAIN)
        self._last_core: Optional[ast.Expr] = None
        #: the compiled-query plan cache (``plan_cache_capacity=0``
        #: disables caching entirely)
        self.plan_cache = PlanCache(plan_cache_capacity)
        self.env.add_mutation_listener(self.plan_cache.on_env_mutation)

    # -- statement execution -----------------------------------------------------

    def run(self, source: str) -> List[Output]:
        """Execute a block of AQL statements; return their outputs.

        A leading ``:profile`` (delimited by whitespace or end of
        source) runs the remainder of the source with observability
        enabled and attaches an :class:`~repro.obs.ExplainReport`
        (pipeline spans, per-rule firing stats with timings, evaluator
        counters, plan-cache counters) to the last output.  Any other
        leading ``:``-command is rejected with a :class:`SessionError`
        — AQL statements never start with ``:``, so a stray ``:typo``
        cannot silently run as a query.
        """
        stripped = source.lstrip()
        if stripped.startswith(":"):
            head = stripped.split(maxsplit=1)
            command, rest = head[0], (head[1] if len(head) > 1 else "")
            if command == PROFILE_PREFIX:
                return self.profile(rest)
            raise SessionError(
                f"unknown command {command!r} (sessions accept AQL "
                f"statements and the {PROFILE_PREFIX} prefix)"
            )
        tracer = self.env.obs.tracer
        with tracer.span("parse"):
            statements = parse_program(source)
        return [self.execute(statement) for statement in statements]

    def run_script(self, source: str, echo: bool = False) -> List[str]:
        """Execute and render each statement (optionally printing)."""
        rendered = []
        for output in self.run(source):
            text = output.render()
            rendered.append(text)
            if echo:
                print(text)
        return rendered

    def query_value(self, source: str) -> Any:
        """Evaluate a single query expression and return its value.

        A missing final ``;`` is forgiven (it is appended and the parse
        retried), so one-off expressions read naturally.  When the
        retry fails too, the *original* error is re-raised, so its
        position refers to the source the caller actually wrote rather
        than the silently modified retry text.
        """
        from repro.errors import ParseError

        try:
            statements = parse_program(source)
        except ParseError as original:
            try:
                statements = parse_program(source + ";")
            except ParseError:
                raise original from None
        if not statements:
            raise SessionError(
                "empty source: nothing to evaluate"
            )
        outputs = [self.execute(statement) for statement in statements]
        last = outputs[-1]
        if not last.has_value:
            raise SessionError("statement did not produce a value")
        return last.value

    def execute(self, statement: S.Statement) -> Output:
        """Execute one parsed top-level statement."""
        if isinstance(statement, S.Query):
            return self._query(statement.expr, "it")
        if isinstance(statement, S.ValDecl):
            output = self._query(statement.expr, statement.name)
            self.env.set_val(statement.name, output.value)
            return output
        if isinstance(statement, S.MacroDecl):
            body = self._desugarer.desugar(statement.expr)
            sig = self.env.register_macro(statement.name, body)
            return Output("macro", statement.name, _scheme_text(sig))
        if isinstance(statement, S.ReadVal):
            return self._readval(statement)
        if isinstance(statement, S.WriteVal):
            return self._writeval(statement)
        raise SessionError(f"unknown statement {statement!r}")

    # -- compilation (plan-cache aware) --------------------------------------------

    def prepare(self, core: ast.Expr) -> Plan:
        """Compile a core expression into an executable :class:`Plan`,
        consulting the plan cache first.

        A hit returns the stored optimized core (plus, on the compiled
        backend, the already-generated closure) without running
        resolve, typecheck, optimize, or codegen; a miss runs the full
        pipeline and records the result.  Cache keying and invalidation
        are described in :mod:`repro.system.plan_cache`.
        """
        env, cache = self.env, self.plan_cache
        if not cache.enabled:
            compiled, inferred = env.compile(core, optimize=self.optimize)
            return Plan(compiled, inferred,
                        estimated_units=self._estimate_units(compiled))
        tracer = env.obs.tracer
        with tracer.span("plan_cache"):
            key = cache.key_for(core, self.optimize, env.backend)
            entry = cache.lookup(key, env)
            tracer.annotate(hit=entry is not None, entries=len(cache))
        if entry is not None:
            return Plan(entry.core, entry.inferred, cached=True,
                        evaluator=entry.evaluator, entry=entry,
                        estimated_units=entry.estimated_units)
        compiled, inferred = env.compile(core, optimize=self.optimize)
        evaluator = env.plan_evaluator()
        if evaluator is not None:
            with tracer.span("codegen"):
                evaluator.prepare(compiled)
        units = self._estimate_units(compiled)
        entry = cache.insert(key, compiled, inferred, ast.free_vars(core),
                             env, evaluator, source_core=core,
                             estimated_units=units)
        return Plan(compiled, inferred, entry=entry, estimated_units=units)

    def _estimate_units(self, core: ast.Expr) -> Optional[float]:
        """The cost model's unit estimate for ``core`` (None: model off)."""
        cost = self.env.cost
        if cost is None or not cost.enabled:
            return None
        return cost.estimate(core)

    # -- helpers ---------------------------------------------------------------------

    def _compile(self, surface: S.SExpr, record: bool = True) -> Plan:
        """Desugar + :meth:`prepare`; ``record=False`` leaves
        ``_last_core`` (the EXPLAIN state) untouched, so auxiliary
        expressions — a driver's args — never clobber the statement's
        query core."""
        with self.env.obs.tracer.span("desugar"):
            core = self._desugarer.desugar(surface)
        plan = self.prepare(core)
        if record:
            self._last_core = plan.core
        return plan

    def _evaluate(self, plan: Plan) -> Any:
        """Run a plan to a value inside the ``evaluate`` span.

        The cached closure is used only on the unobserved fast path; an
        instrumented run regenerates probed code through the
        environment's evaluator so counters stay accurate.

        When the cost model is enabled and the plan carries a unit
        estimate, the run is timed and the observation fed back: the
        model calibrates its scalar coefficient, and estimate-vs-actual
        divergence may trigger an adaptive re-plan of the backing cache
        entry (see :meth:`_observe_run`).
        """
        env = self.env
        cost = env.cost
        with env.obs.tracer.span("evaluate"):
            use_cached = plan.evaluator is not None and not env.obs.enabled
            if cost is None or not cost.enabled \
                    or plan.estimated_units is None:
                if use_cached:
                    return plan.evaluator.run(plan.core)
                return env.evaluator().run(plan.core)
            started = time.perf_counter()
            if use_cached:
                value = plan.evaluator.run(plan.core)
            else:
                value = env.evaluator().run(plan.core)
            elapsed = time.perf_counter() - started
            self._observe_run(plan, cost, elapsed)
            return value

    def _observe_run(self, plan: Plan, cost: Any, seconds: float) -> None:
        """Fold one observed execution into the cost model and the plan's
        cache entry; re-plan the entry when the model reports divergence.
        """
        replan = cost.record_run(plan.estimated_units, seconds)
        entry = plan.entry
        if entry is not None:
            entry.runs += 1
            if entry.runs == 1:
                entry.observed_seconds = seconds
            else:
                entry.observed_seconds = \
                    0.5 * entry.observed_seconds + 0.5 * seconds
            if replan and not entry.replanned \
                    and entry.source_core is not None:
                self._replan(entry)

    def _replan(self, entry: Any) -> None:
        """Recompile a divergent entry through the *full* pipeline.

        The first plan may have been compiled with cost-floor phase
        skipping; when the observed run proves the query expensive, the
        skipped phases (e.g. loop motion) are exactly the ones that
        matter, so the re-plan forces every phase back on.  Re-planning
        happens at most once per entry (:attr:`PlanEntry.replanned`), so
        a query the estimator cannot see through does not thrash.
        """
        env, cost = self.env, self.env.cost
        entry.replanned = True
        with env.obs.tracer.span("replan"), cost.full_pipeline():
            compiled, inferred = env.compile(entry.source_core,
                                             optimize=self.optimize)
            evaluator = env.plan_evaluator()
            if evaluator is not None:
                evaluator.prepare(compiled)
        entry.core = compiled
        entry.inferred = inferred
        entry.evaluator = evaluator
        entry.estimated_units = cost.estimate(compiled)
        entry.runs = 0
        entry.observed_seconds = 0.0
        cost.counters["cost_replans"] += 1
        self.plan_cache.stats.replans += 1

    def _query(self, surface: S.SExpr, name: str) -> Output:
        plan = self._compile(surface)
        value = self._evaluate(plan)
        return Output("query" if name == "it" else "val", name,
                      str(plan.inferred), value, has_value=True)

    def _readval(self, statement: S.ReadVal) -> Output:
        reader = self.env.drivers.reader(statement.reader)
        plan = self._compile(statement.args)
        args_value = self._evaluate(plan)
        value = _driver_boundary(reader, args_value)
        self.env.set_val(statement.name, value)
        value_type = type_of_value(value)
        return Output("readval", statement.name, str(value_type),
                      value, has_value=True)

    def _writeval(self, statement: S.WriteVal) -> Output:
        writer = self.env.drivers.writer(statement.writer)
        plan = self._compile(statement.expr)
        value = self._evaluate(plan)
        args_plan = self._compile(statement.args, record=False)
        args_value = self._evaluate(args_plan)
        _driver_boundary(writer, value, args_value)
        return Output("writeval", "it", str(plan.inferred))

    # -- observability (EXPLAIN / :profile) ----------------------------------------

    def profile(self, source: str) -> List[Output]:
        """Execute ``source`` with observability on; attach the report.

        The last output carries an :class:`~repro.obs.ExplainReport`
        covering the whole block (the optimizer stats and the rendered
        core describe the block's final query).  The environment's
        observability state is captured up front and restored exactly
        afterwards: an uninstrumented session returns to zero-cost
        nulls, and a caller that had observability on gets its own
        tracer and accumulated counters back untouched.
        """
        from repro.objects import dense

        obs = self.env.obs
        saved = obs.capture()
        obs.enable()
        dense_before = dense.COUNTERS.snapshot()
        try:
            outputs = self.run(source)
            if not outputs:
                raise SessionError("nothing to profile")
            spans = obs.tracer.finish()
            dense_delta = {
                key: value - dense_before[key]
                for key, value in dense.COUNTERS.snapshot().items()
            }
            last = outputs[-1]
            last.explain = ExplainReport(
                source=source.strip(),
                type_text=last.type_text,
                core_text=(pprint(self._last_core)
                           if self._last_core is not None else ""),
                spans=spans,
                phase_stats=dict(self.env.optimizer.report()),
                metrics=obs.metrics,
                cache=self.plan_cache.snapshot(),
                dense=dense_delta,
                cost=(self.env.cost.snapshot()
                      if self.env.cost is not None else None),
                value=last.value,
                has_value=last.has_value,
            )
            if last.kind == "query":
                last.kind = "profile"
            return outputs
        finally:
            obs.restore(saved)

    def explain(self, source: str) -> ExplainReport:
        """The API form of ``:profile``: run one query instrumented and
        return the :class:`~repro.obs.ExplainReport` directly."""
        outputs = self.profile(source)
        report = outputs[-1].explain
        assert report is not None  # profile always attaches one
        return report

    # -- the SML-side registration view (Section 4.1) ------------------------------

    def register_co(self, name: str, fn, signature: TypeScheme | Type,
                    replace: bool = False) -> None:
        """The paper's ``TopEnv.RegisterCO``: add an external primitive."""
        self.env.register_co(name, fn, signature, replace)


def _scheme_text(scheme: TypeScheme) -> str:
    return str(scheme.body)


__all__ = ["Session", "Output", "PROFILE_PREFIX"]
