"""Type expressions for the NRCA calculus (Figure 1 of the paper).

Types are immutable, hashable dataclasses.  Inference uses mutable-free
type variables (:class:`TVar`) resolved through an explicit substitution
(see :mod:`repro.types.unify`), so printed types never contain stale
bindings.

A small constraint system rides on type variables: a variable may be
restricted to *numeric* types (``N`` or ``real`` — used by the overloaded
arithmetic operators) via its ``constraint`` field.  Equality and linear
order are available at every object type (Section 2: their liftings are
definable, so we make them primitive), hence need no constraint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple


class Type:
    """Base class of all type expressions."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class TBool(Type):
    """The type ``B`` of booleans."""

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class TNat(Type):
    """The type ``N`` of natural numbers."""

    def __str__(self) -> str:
        return "nat"


@dataclass(frozen=True)
class TReal(Type):
    """An interpreted base type of reals (used by the paper's examples)."""

    def __str__(self) -> str:
        return "real"


@dataclass(frozen=True)
class TString(Type):
    """An interpreted base type of strings."""

    def __str__(self) -> str:
        return "string"


@dataclass(frozen=True)
class TBase(Type):
    """An uninterpreted base type ``b`` named by the user."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TProduct(Type):
    """The k-ary product ``t1 × ... × tk`` (k >= 2)."""

    items: Tuple[Type, ...]

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise ValueError("products have arity >= 2")

    def __str__(self) -> str:
        return "(" + " * ".join(_paren(t) for t in self.items) + ")"


@dataclass(frozen=True)
class TSet(Type):
    """The set type ``{t}``."""

    elem: Type

    def __str__(self) -> str:
        return "{" + str(self.elem) + "}"


@dataclass(frozen=True)
class TBag(Type):
    """The bag type ``{|t|}`` of the Section 6 calculus NBC."""

    elem: Type

    def __str__(self) -> str:
        return "{|" + str(self.elem) + "|}"


@dataclass(frozen=True)
class TArray(Type):
    """The k-dimensional array type ``[[t]]_k``."""

    elem: Type
    rank: int

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError("array rank must be >= 1")

    def __str__(self) -> str:
        return f"[[{self.elem}]]_{self.rank}"


@dataclass(frozen=True)
class TArrow(Type):
    """The object function type ``t1 -> t2``."""

    arg: Type
    result: Type

    def __str__(self) -> str:
        return f"{_paren(self.arg)} -> {self.result}"


_tvar_counter = itertools.count()

# Constraint kinds a type variable can carry.
NUMERIC = "numeric"  # must resolve to nat or real


@dataclass(frozen=True)
class TVar(Type):
    """A unification variable, optionally constrained to numeric types."""

    ident: int
    constraint: Optional[str] = None

    def __str__(self) -> str:
        prefix = "#" if self.constraint == NUMERIC else "'"
        return f"{prefix}t{self.ident}"


def fresh_tvar(constraint: Optional[str] = None) -> TVar:
    """Mint a fresh type variable (optionally numeric-constrained)."""
    return TVar(next(_tvar_counter), constraint)


@dataclass(frozen=True)
class TypeScheme:
    """A polymorphic type ``∀ a1...an . t`` for macros and primitives."""

    quantified: Tuple[int, ...]
    body: Type

    def __str__(self) -> str:
        if not self.quantified:
            return str(self.body)
        vars_text = " ".join(f"'t{v}" for v in self.quantified)
        return f"forall {vars_text}. {self.body}"

    @classmethod
    def mono(cls, body: Type) -> "TypeScheme":
        """A monomorphic scheme (no quantified variables)."""
        return cls((), body)


def _paren(t: Type) -> str:
    text = str(t)
    if isinstance(t, (TProduct, TArrow)):
        return text if text.startswith("(") else f"({text})"
    return text


def free_tvars(t: Type) -> Dict[int, TVar]:
    """All type variables occurring in ``t``, keyed by identity."""
    found: Dict[int, TVar] = {}
    _collect(t, found)
    return found


def _collect(t: Type, found: Dict[int, TVar]) -> None:
    if isinstance(t, TVar):
        found[t.ident] = t
    elif isinstance(t, TProduct):
        for item in t.items:
            _collect(item, found)
    elif isinstance(t, (TSet, TBag)):
        _collect(t.elem, found)
    elif isinstance(t, TArray):
        _collect(t.elem, found)
    elif isinstance(t, TArrow):
        _collect(t.arg, found)
        _collect(t.result, found)


def type_of_value(value: Any) -> Type:
    """Infer the (ground) type of a complex-object value.

    Empty sets/bags/arrays get fresh element type variables, because the
    value alone does not determine the element type.
    """
    from repro.objects.array import Array
    from repro.objects.bag import Bag

    if isinstance(value, bool):
        return TBool()
    if isinstance(value, int):
        return TNat()
    if isinstance(value, float):
        return TReal()
    if isinstance(value, str):
        return TString()
    if isinstance(value, tuple):
        return TProduct(tuple(type_of_value(v) for v in value))
    if isinstance(value, frozenset):
        return TSet(_elem_type(value))
    if isinstance(value, Bag):
        return TBag(_elem_type(value.support()))
    if isinstance(value, Array):
        block = value.block
        if block is not None and value.size:
            # dense-backed: the dtype tag *is* the element type — no
            # need to box the buffer just to inspect its elements
            elem = {"int": TNat(), "real": TReal(),
                    "bool": TBool()}[block.tag]
            return TArray(elem, value.rank)
        return TArray(_elem_type(value.flat), value.rank)
    raise TypeError(f"not a complex-object value: {value!r}")


def _elem_type(items: Iterable[Any]) -> Type:
    items = list(items)
    if not items:
        return fresh_tvar()
    # unify across ALL elements, not just the first: heterogeneous-depth
    # collections like {{}, {{}}} are well-typed ({α} ~ {{β}} gives
    # {{β}}), and collection iteration order must not affect the result
    from repro.types.unify import unify, zonk

    subst: Dict[int, Type] = {}
    elem = type_of_value(items[0])
    for item in items[1:]:
        unify(elem, type_of_value(item), subst)
    return zonk(elem, subst)


__all__ = [
    "Type",
    "TBool",
    "TNat",
    "TReal",
    "TString",
    "TBase",
    "TProduct",
    "TSet",
    "TBag",
    "TArray",
    "TArrow",
    "TVar",
    "TypeScheme",
    "NUMERIC",
    "fresh_tvar",
    "free_tvars",
    "type_of_value",
]
