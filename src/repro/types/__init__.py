"""Type expressions and inference machinery for NRCA/AQL.

The object types of Figure 1::

    t ::= b | B | N | t1 × ... × tk | {t} | [[t]]_k

extended with the base types ``real`` and ``string`` (the paper's
uninterpreted base types, which its examples use for temperatures and
names), bags (Section 6), and object function types ``t1 -> t2``.
"""

from repro.types.types import (
    TArray,
    TArrow,
    TBag,
    TBase,
    TBool,
    TNat,
    TProduct,
    TReal,
    TSet,
    TString,
    TVar,
    Type,
    TypeScheme,
    fresh_tvar,
    type_of_value,
)
from repro.types.unify import (
    Substitution,
    apply_subst,
    generalize,
    instantiate,
    unify,
    zonk,
)

__all__ = [
    "Type",
    "TBase",
    "TBool",
    "TNat",
    "TReal",
    "TString",
    "TProduct",
    "TSet",
    "TBag",
    "TArray",
    "TArrow",
    "TVar",
    "TypeScheme",
    "fresh_tvar",
    "type_of_value",
    "Substitution",
    "unify",
    "apply_subst",
    "zonk",
    "generalize",
    "instantiate",
]
