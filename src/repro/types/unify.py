"""Unification and type-scheme machinery for AQL type inference.

A :class:`Substitution` maps type-variable idents to types.  ``unify``
extends it; ``zonk`` fully applies it; ``generalize``/``instantiate``
implement let-polymorphism for macros and primitives (Section 4.1: macros
are typechecked at declaration — the ``typ`` lines of the sample session —
and substituted at use sites, so they behave polymorphically).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.errors import UnificationError
from repro.types.types import (
    NUMERIC,
    TArray,
    TArrow,
    TBag,
    TBase,
    TBool,
    TNat,
    TProduct,
    TReal,
    TSet,
    TString,
    TVar,
    Type,
    TypeScheme,
    free_tvars,
    fresh_tvar,
)

Substitution = Dict[int, Type]


def walk(t: Type, subst: Substitution) -> Type:
    """Resolve top-level variable bindings (without recursing into children)."""
    while isinstance(t, TVar) and t.ident in subst:
        t = subst[t.ident]
    return t


def zonk(t: Type, subst: Substitution) -> Type:
    """Fully apply ``subst`` throughout ``t``."""
    t = walk(t, subst)
    if isinstance(t, TProduct):
        return TProduct(tuple(zonk(item, subst) for item in t.items))
    if isinstance(t, TSet):
        return TSet(zonk(t.elem, subst))
    if isinstance(t, TBag):
        return TBag(zonk(t.elem, subst))
    if isinstance(t, TArray):
        return TArray(zonk(t.elem, subst), t.rank)
    if isinstance(t, TArrow):
        return TArrow(zonk(t.arg, subst), zonk(t.result, subst))
    return t


apply_subst = zonk


def occurs(ident: int, t: Type, subst: Substitution) -> bool:
    """Occurs check: does variable ``ident`` appear in ``t``?"""
    t = walk(t, subst)
    if isinstance(t, TVar):
        return t.ident == ident
    if isinstance(t, TProduct):
        return any(occurs(ident, item, subst) for item in t.items)
    if isinstance(t, (TSet, TBag, TArray)):
        return occurs(ident, t.elem, subst)
    if isinstance(t, TArrow):
        return occurs(ident, t.arg, subst) or occurs(ident, t.result, subst)
    return False


def _satisfies_numeric(t: Type) -> bool:
    return isinstance(t, (TNat, TReal))


def _bind(var: TVar, t: Type, subst: Substitution) -> None:
    if isinstance(t, TVar) and t.ident == var.ident:
        return
    if occurs(var.ident, t, subst):
        raise UnificationError(f"occurs check: {var} in {t}")
    if var.constraint == NUMERIC:
        if isinstance(t, TVar):
            if t.constraint != NUMERIC:
                # propagate the numeric constraint onto the other variable
                numeric = fresh_tvar(NUMERIC)
                subst[t.ident] = numeric
                subst[var.ident] = numeric
                return
        elif not _satisfies_numeric(t):
            raise UnificationError(
                f"numeric type variable cannot be {t} (expected nat or real)"
            )
    subst[var.ident] = t


def unify(a: Type, b: Type, subst: Substitution) -> None:
    """Destructively extend ``subst`` so that ``a`` and ``b`` become equal.

    Raises :class:`~repro.errors.UnificationError` on mismatch.
    """
    a = walk(a, subst)
    b = walk(b, subst)
    if isinstance(a, TVar):
        _bind(a, b, subst)
        return
    if isinstance(b, TVar):
        _bind(b, a, subst)
        return
    if isinstance(a, TBool) and isinstance(b, TBool):
        return
    if isinstance(a, TNat) and isinstance(b, TNat):
        return
    if isinstance(a, TReal) and isinstance(b, TReal):
        return
    if isinstance(a, TString) and isinstance(b, TString):
        return
    if isinstance(a, TBase) and isinstance(b, TBase) and a.name == b.name:
        return
    if isinstance(a, TProduct) and isinstance(b, TProduct):
        if len(a.items) != len(b.items):
            raise UnificationError(
                f"product arity mismatch: {a} vs {b}"
            )
        for x, y in zip(a.items, b.items):
            unify(x, y, subst)
        return
    if isinstance(a, TSet) and isinstance(b, TSet):
        unify(a.elem, b.elem, subst)
        return
    if isinstance(a, TBag) and isinstance(b, TBag):
        unify(a.elem, b.elem, subst)
        return
    if isinstance(a, TArray) and isinstance(b, TArray):
        if a.rank != b.rank:
            raise UnificationError(f"array rank mismatch: {a} vs {b}")
        unify(a.elem, b.elem, subst)
        return
    if isinstance(a, TArrow) and isinstance(b, TArrow):
        unify(a.arg, b.arg, subst)
        unify(a.result, b.result, subst)
        return
    raise UnificationError(f"cannot unify {a} with {b}")


def generalize(t: Type, subst: Substitution,
               monomorphic: Iterable[int] = ()) -> TypeScheme:
    """Quantify over the free variables of ``zonk(t)`` not in ``monomorphic``."""
    body = zonk(t, subst)
    mono: Set[int] = set(monomorphic)
    quantified = tuple(
        ident for ident in free_tvars(body) if ident not in mono
    )
    return TypeScheme(quantified, body)


def instantiate(scheme: TypeScheme) -> Type:
    """Replace quantified variables with fresh ones."""
    if not scheme.quantified:
        return scheme.body
    originals = free_tvars(scheme.body)
    mapping: Substitution = {}
    for ident in scheme.quantified:
        original = originals.get(ident)
        constraint = original.constraint if original is not None else None
        mapping[ident] = fresh_tvar(constraint)
    return zonk(scheme.body, mapping)


__all__ = [
    "Substitution",
    "walk",
    "zonk",
    "apply_subst",
    "occurs",
    "unify",
    "generalize",
    "instantiate",
]
